# Convenience targets; dune is the real build system.

.PHONY: all build test bench bench-quick bench-eval bench-attacks bench-eval-smoke bench-attacks-smoke bench-smoke bench-load fuzz fuzz-smoke opt-smoke systest store-smoke load-smoke gate check examples clean

all: build

build:
	dune build @all

test:
	dune runtest

bench:
	dune exec bench/main.exe

bench-quick:
	dune exec bench/main.exe -- --quick

# Evaluation-engine micro-benchmarks; verifies engine/seed-path equivalence
# on every benchmark and writes BENCH_eval.json.
bench-eval:
	dune exec bench/bench_eval.exe

# Attack-framework benchmarks: oracle throughput (batched engine path
# vs. the pre-framework assoc-list oracle, equivalence-checked, must be
# >= 10x) plus per-attack wall time; writes BENCH_attacks.json.
bench-attacks:
	dune exec bench/bench_attacks.exe

# CI-sized variants; they write outside the tree so the committed
# BENCH_*.json stay full-run artifacts.  Both self-check their emitted
# JSON against the repo parser; bench_eval asserts the block path never
# loses to the single-word path, bench_attacks asserts the batched
# oracle is >= 10x the assoc baseline and >= 1x scalar on the largest
# circuit in the run.
bench-eval-smoke:
	dune exec bench/bench_eval.exe -- --smoke /tmp/BENCH_eval_smoke.json

bench-attacks-smoke:
	dune exec bench/bench_attacks.exe -- --smoke /tmp/BENCH_attacks_smoke.json

bench-smoke: bench-eval-smoke bench-attacks-smoke

# Refresh the committed sustained-load baseline (full 5 s windows per
# transport x mode row; run on the reference machine only).
bench-load: build
	dune exec bin/systest_main.exe -- load --out BENCH_load.json

# Differential fuzzing: engine vs reference vs timing sim vs SAT/BDD,
# plus locking-scheme metamorphic properties.  Failures shrink to
# replayable .bench/.stim pairs; rerun with GKLOCK_SEED=<n> to replay.
fuzz:
	dune exec bin/gklock_cli.exe -- fuzz --cases 2000

# Time-boxed variant for CI: whatever fits in ~10 seconds.
fuzz-smoke:
	dune exec bin/gklock_cli.exe -- fuzz --cases 100000 --time 10 --quiet

# The opt front-end end to end through the CLI: optimize two built-in
# benchmarks and SAT-verify each optimized netlist against its original.
opt-smoke: build
	dune exec bin/gklock_cli.exe -- opt s1238 --check -o /tmp/s1238_opt.bench
	dune exec bin/gklock_cli.exe -- opt s5378 --check -o /tmp/s5378_opt.bench

# End-to-end system tests: the full scenario catalogue (CLI round
# trips, campaign run/interrupt/resume, daemon parity, quota and
# shutdown gating, gate self-check) against the real binaries.  The
# old campaign-smoke / trace-smoke / serve-smoke drivers live on as
# scenarios here.
systest: build
	dune exec bin/systest_main.exe -- run --profile smoke

# Content-addressed store end to end: seed a campaign, migrate a legacy
# results.jsonl with byte-identical report, widen the matrix and prove
# only the delta executes, then gc + fsck the store clean.
store-smoke: build
	dune exec bin/systest_main.exe -- run --only campaign_store,campaign_run

# Short sustained-load measurement (1 s windows; does not touch the
# committed BENCH_load.json).
load-smoke: build
	dune exec bin/systest_main.exe -- load --smoke --out /tmp/BENCH_load_smoke.json

# Perf regression gate: re-measure smoke-profile numbers and compare
# against the committed BENCH_*.json trajectory.  GATE_FLAGS widens
# the tolerances for noisy machines (CI uses --max-slowdown 4
# --ratio-tolerance 3); the committed baselines come from `make
# bench-eval`, `make bench-attacks` and `make bench-load` on the
# reference machine.
gate: build
	dune exec bench/bench_eval.exe -- --smoke /tmp/BENCH_eval_fresh.json
	dune exec bench/bench_attacks.exe -- --smoke /tmp/BENCH_attacks_fresh.json
	dune exec bin/systest_main.exe -- load --smoke --out /tmp/BENCH_load_fresh.json
	dune exec bin/systest_main.exe -- gate --baseline-dir . \
	  --fresh-eval /tmp/BENCH_eval_fresh.json \
	  --fresh-attacks /tmp/BENCH_attacks_fresh.json \
	  --fresh-load /tmp/BENCH_load_fresh.json $(GATE_FLAGS)

# Everything a PR must keep green: full build (libs, CLI, examples,
# benches), the test suite, a fuzz smoke, the system-test catalogue
# and the perf regression gate.
check: build test fuzz-smoke opt-smoke systest store-smoke gate

examples:
	dune exec examples/quickstart.exe
	dune exec examples/attack_resilience.exe
	dune exec examples/timing_exploration.exe
	dune exec examples/hybrid_locking.exe
	dune exec examples/withholding.exe
	dune exec examples/scan_bist.exe

clean:
	dune clean
