# Convenience targets; dune is the real build system.

.PHONY: all build test bench bench-quick examples clean

all: build

build:
	dune build @all

test:
	dune runtest

bench:
	dune exec bench/main.exe

bench-quick:
	dune exec bench/main.exe -- --quick

examples:
	dune exec examples/quickstart.exe
	dune exec examples/attack_resilience.exe
	dune exec examples/timing_exploration.exe
	dune exec examples/hybrid_locking.exe
	dune exec examples/withholding.exe
	dune exec examples/scan_bist.exe

clean:
	dune clean
