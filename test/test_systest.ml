(* Tier-1 coverage for the system-test harness itself plus the one
   end-to-end path important enough to guard from the unit suite: the
   --allow-tcp-shutdown gate exercised against the *real* gklockd
   binary over a real TCP socket (test_net covers the same policy
   in-process; this covers the shipped executable). *)

let tmp_dir prefix =
  let d =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "%s_%d_%d" prefix (Unix.getpid ()) (Random.bits ()))
  in
  Systest.mkdir_p d;
  d

(* ----- Systest_proc ----- *)

let test_proc_exit_capture () =
  let dir = tmp_dir "gklock_proc" in
  let p =
    Systest_proc.spawn ~logs_dir:dir ~name:"echo" "/bin/sh"
      [ "-c"; "echo out_line; echo err_line >&2; exit 7" ]
  in
  (match Systest_proc.wait ~timeout_s:10.0 p with
  | Unix.WEXITED 7 -> ()
  | _ -> Alcotest.fail "expected exit 7");
  Alcotest.(check bool) "stdout captured" true
    (Systest_proc.stdout p = "out_line\n");
  Alcotest.(check bool) "stderr captured" true
    (Systest_proc.stderr p = "err_line\n");
  Systest.rm_rf dir

let test_proc_wait_for_log () =
  let dir = tmp_dir "gklock_proc" in
  let p =
    Systest_proc.spawn ~logs_dir:dir ~name:"slow" "/bin/sh"
      [ "-c"; "echo starting; sleep 0.1; echo ready now; sleep 30" ]
  in
  let line = Systest_proc.wait_for_log ~timeout_s:10.0 p "ready" in
  Alcotest.(check string) "the matching line" "ready now" line;
  Alcotest.(check bool) "still alive" true (Systest_proc.alive p);
  Systest_proc.kill p;
  Alcotest.(check bool) "killed" false (Systest_proc.alive p);
  (* a pattern that never appears on an exited process raises Timeout
     immediately instead of burning the full timeout *)
  let t0 = Unix.gettimeofday () in
  (match Systest_proc.wait_for_log ~timeout_s:20.0 p "never_printed" with
  | _ -> Alcotest.fail "expected Timeout"
  | exception Systest_proc.Timeout _ -> ());
  Alcotest.(check bool) "failed fast" true (Unix.gettimeofday () -. t0 < 5.0);
  Systest.rm_rf dir

let test_proc_stragglers () =
  let dir = tmp_dir "gklock_proc" in
  let _p =
    Systest_proc.spawn ~logs_dir:dir ~name:"straggler" "/bin/sh"
      [ "-c"; "sleep 30" ]
  in
  Alcotest.(check bool) "at least one straggler" true
    (Systest_proc.kill_stragglers () >= 1);
  Alcotest.(check int) "idempotent" 0 (Systest_proc.kill_stragglers ());
  Systest.rm_rf dir

(* ----- ephemeral-port addresses ----- *)

let test_parse_addr_port0 () =
  (match Frame_io.parse_addr "tcp:127.0.0.1:0" with
  | Ok (Frame_io.Tcp ("127.0.0.1", 0)) -> ()
  | Ok a -> Alcotest.fail ("parsed to " ^ Frame_io.addr_to_string a)
  | Error e -> Alcotest.fail e);
  match Frame_io.parse_addr "tcp:127.0.0.1:65536" with
  | Ok _ -> Alcotest.fail "port 65536 accepted"
  | Error _ -> ()

(* ----- Perf_gate ----- *)

let doc_of_string s =
  match Cjson.of_string s with Ok j -> j | Error e -> Alcotest.fail e

(* A miniature BENCH_load.json: one row per transport. *)
let load_doc ~qps ~p99 =
  doc_of_string
    (Printf.sprintf
       {|{"schema":"gklock/bench_load/v1","rows":[
          {"transport":"unix","mode":"scalar","qps":%f,"p50_us":100.0,"p99_us":%f},
          {"transport":"tcp","mode":"batch63","qps":%f,"p50_us":120.0,"p99_us":%f}]}|}
       qps p99 (qps *. 10.0) (p99 *. 2.0))

let attacks_doc ~verdict =
  doc_of_string
    (Printf.sprintf
       {|{"schema":"gklock/bench_attacks/v2",
          "oracle":[{"name":"s1238","scalar_queries_per_sec":1000.0,
                     "batch_queries_per_sec":9000.0,
                     "batch_speedup":9.0}],
          "attacks":[{"bench":"s27","attack":"sat","verdict":"%s"}]}|}
       verdict)

let test_gate_identity_ok () =
  let base = load_doc ~qps:5000.0 ~p99:2000.0 in
  let r = Perf_gate.compare_docs [ (`Load, base, base) ] in
  Alcotest.(check bool) "identity passes" true r.Perf_gate.g_ok;
  Alcotest.(check bool) "has checks" true (r.Perf_gate.g_checks <> [])

let test_gate_trips_on_slowdown () =
  let base = load_doc ~qps:5000.0 ~p99:2000.0 in
  let r =
    Perf_gate.compare_docs ~inject_slowdown:2.0 [ (`Load, base, base) ]
  in
  Alcotest.(check bool) "2x slowdown fails the default 1.5x gate" false
    r.Perf_gate.g_ok;
  (* both directions trip: throughput divided, latency multiplied *)
  let failing k =
    List.exists
      (fun c -> c.Perf_gate.c_kind = k && not c.Perf_gate.c_ok)
      r.Perf_gate.g_checks
  in
  Alcotest.(check bool) "a throughput check failed" true
    (failing Perf_gate.Throughput);
  Alcotest.(check bool) "a latency check failed" true
    (failing Perf_gate.Latency)

let test_gate_tolerates_within_budget () =
  let base = load_doc ~qps:5000.0 ~p99:2000.0 in
  let fresh = load_doc ~qps:4000.0 ~p99:2400.0 in
  (* 20% worse on both axes: inside the default 1.5x budget *)
  let r = Perf_gate.compare_docs [ (`Load, base, fresh) ] in
  Alcotest.(check bool) "20%% slowdown passes" true r.Perf_gate.g_ok

let test_gate_verdict_flip_fails () =
  let base = attacks_doc ~verdict:"key_recovered" in
  let fresh = attacks_doc ~verdict:"gave_up" in
  let r = Perf_gate.compare_docs [ (`Attacks, base, fresh) ] in
  Alcotest.(check bool) "verdict flip fails" false r.Perf_gate.g_ok;
  (* ...even under an injected slowdown, verdicts are never scaled *)
  let r_same =
    Perf_gate.compare_docs ~inject_slowdown:1000.0
      ~max_slowdown:1e9 ~ratio_tolerance:1e9
      [ (`Attacks, base, base) ]
  in
  Alcotest.(check bool) "identical verdicts pass whatever the injection"
    true
    (List.for_all
       (fun c ->
         c.Perf_gate.c_kind <> Perf_gate.Verdict || c.Perf_gate.c_ok)
       r_same.Perf_gate.g_checks)

let test_gate_one_sided_is_skipped () =
  let base = load_doc ~qps:5000.0 ~p99:2000.0 in
  let fresh =
    doc_of_string
      {|{"schema":"gklock/bench_load/v1","rows":[
         {"transport":"unix","mode":"scalar","qps":5000.0,
          "p50_us":100.0,"p99_us":2000.0}]}|}
  in
  let r = Perf_gate.compare_docs [ (`Load, base, fresh) ] in
  Alcotest.(check bool) "missing tcp row skipped, not failed" true
    r.Perf_gate.g_ok;
  Alcotest.(check bool) "skips recorded" true (r.Perf_gate.g_skipped <> [])

let test_gate_ratio_machine_independent () =
  let base = attacks_doc ~verdict:"key_recovered" in
  let r =
    Perf_gate.compare_docs ~inject_slowdown:4.0 [ (`Attacks, base, base) ]
  in
  (* a uniform slowdown scales both sides of every speedup ratio, so
     Ratio checks must not trip *)
  Alcotest.(check bool) "ratios survive a uniform slowdown" true
    (List.for_all
       (fun c -> c.Perf_gate.c_kind <> Perf_gate.Ratio || c.Perf_gate.c_ok)
       r.Perf_gate.g_checks)

(* ----- real-binary TCP shutdown gating ----- *)

let gklockd_exe = Filename.concat (Filename.dirname Sys.argv.(0)) "../bin/gklockd.exe"

let with_daemon ~args f =
  let dir = tmp_dir "gklock_gklockd" in
  let d =
    Systest_proc.spawn ~logs_dir:dir ~name:"gklockd" gklockd_exe
      ([ "s27"; "--listen"; "tcp:127.0.0.1:0" ] @ args)
  in
  Fun.protect
    ~finally:(fun () ->
      Systest_proc.kill d;
      Systest.rm_rf dir)
    (fun () -> f d (Load_gen.bound_addr d))

let test_tcp_shutdown_refused_e2e () =
  if not (Sys.file_exists gklockd_exe) then
    Alcotest.skip ()
  else
    with_daemon ~args:[] (fun d addr ->
        let r = Remote_oracle.connect ~client:"tier1" addr in
        (match Remote_oracle.shutdown_server r with
        | () -> Alcotest.fail "shutdown honoured without --allow-tcp-shutdown"
        | exception Remote_oracle.Remote_error (Wire.Not_permitted, _) -> ());
        Alcotest.(check bool) "connection survives the refusal" true
          (Remote_oracle.ping r >= 0.0);
        Remote_oracle.close r;
        Alcotest.(check bool) "daemon survives the refusal" true
          (Systest_proc.alive d))

let test_tcp_shutdown_allowed_e2e () =
  if not (Sys.file_exists gklockd_exe) then
    Alcotest.skip ()
  else
    with_daemon ~args:[ "--allow-tcp-shutdown" ] (fun d addr ->
        let r = Remote_oracle.connect ~client:"tier1" addr in
        Remote_oracle.shutdown_server r;
        Remote_oracle.close r;
        match Systest_proc.wait ~timeout_s:20.0 d with
        | Unix.WEXITED 0 -> ()
        | _ -> Alcotest.fail "daemon did not exit 0 on a permitted shutdown")

let suites =
  [
    ( "systest_proc",
      [
        Alcotest.test_case "exit code and captured streams" `Quick
          test_proc_exit_capture;
        Alcotest.test_case "wait_for_log" `Quick test_proc_wait_for_log;
        Alcotest.test_case "kill_stragglers" `Quick test_proc_stragglers;
      ] );
    ( "systest_gate",
      [
        Alcotest.test_case "parse_addr accepts port 0" `Quick
          test_parse_addr_port0;
        Alcotest.test_case "identity comparison passes" `Quick
          test_gate_identity_ok;
        Alcotest.test_case "injected 2x slowdown trips" `Quick
          test_gate_trips_on_slowdown;
        Alcotest.test_case "20% slowdown within budget" `Quick
          test_gate_tolerates_within_budget;
        Alcotest.test_case "verdict flip fails" `Quick
          test_gate_verdict_flip_fails;
        Alcotest.test_case "one-sided metrics skip" `Quick
          test_gate_one_sided_is_skipped;
        Alcotest.test_case "ratios are machine-independent" `Quick
          test_gate_ratio_machine_independent;
      ] );
    ( "systest_daemon",
      [
        Alcotest.test_case "tcp shutdown refused by default (real binary)"
          `Quick test_tcp_shutdown_refused_e2e;
        Alcotest.test_case "tcp shutdown honoured with flag (real binary)"
          `Quick test_tcp_shutdown_allowed_e2e;
      ] );
  ]
