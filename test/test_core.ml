(* Tests for the umbrella-library helpers: stimuli, report rendering and
   the waveform renderer. *)

let tc = Alcotest.test_case

let qcheck ?(count = 50) name arb law = Qc.qcheck ~count name arb law

(* ----- Stimuli ----- *)

let test_stimuli_edge_aligned () =
  let net = Benchmarks.s27 () in
  let clock_ps = 2000 and cycles = 8 in
  let pi = List.hd (Netlist.inputs net) in
  match Stimuli.edge_aligned ~seed:5 net ~clock_ps ~cycles pi with
  | Timing_sim.Const _ -> Alcotest.fail "expected a waveform"
  | Timing_sim.Wave w ->
    (* transitions only at k*clock + clk2q *)
    List.iter
      (fun (t, _) ->
        Alcotest.(check int) "aligned to launch instants" Cell_lib.dff_clk2q_ps
          (t mod clock_ps))
      (Waveform.transitions w);
    (* determinism *)
    (match Stimuli.edge_aligned ~seed:5 net ~clock_ps ~cycles pi with
    | Timing_sim.Wave w2 -> Alcotest.(check bool) "same seed, same wave" true (Waveform.equal w w2)
    | Timing_sim.Const _ -> Alcotest.fail "expected wave");
    (* different seeds eventually differ across the input set *)
    let differs =
      List.exists
        (fun p ->
          match
            ( Stimuli.edge_aligned ~seed:5 net ~clock_ps ~cycles p,
              Stimuli.edge_aligned ~seed:6 net ~clock_ps ~cycles p )
          with
          | Timing_sim.Wave a, Timing_sim.Wave b -> not (Waveform.equal a b)
          | _, _ -> false)
        (Netlist.inputs net)
    in
    Alcotest.(check bool) "seeds differ" true differs

let test_stimuli_po_agreement () =
  let mk samples =
    {
      Timing_sim.waves = [||];
      ff_ids = [||];
      ff_samples = [||];
      violations = [];
      po_samples = [ ("y", Array.of_list samples) ];
    }
  in
  let a = mk [ Logic.F; Logic.T; Logic.T; Logic.F ] in
  let b = mk [ Logic.T; Logic.T; Logic.F; Logic.F ] in
  Alcotest.(check (pair int int)) "skip 0" (2, 4)
    (Stimuli.po_agreement ~skip:0 a b);
  Alcotest.(check (pair int int)) "skip 1" (1, 3)
    (Stimuli.po_agreement ~skip:1 a b);
  Alcotest.(check (pair int int)) "self" (0, 4)
    (Stimuli.po_agreement ~skip:0 a a)

let test_stimuli_cycle_inputs () =
  let net = Benchmarks.s27 () in
  let pi = List.hd (Netlist.inputs net) in
  Alcotest.(check bool) "deterministic" true
    (Stimuli.cycle_inputs ~seed:1 net 3 pi = Stimuli.cycle_inputs ~seed:1 net 3 pi)

(* ----- Report rendering ----- *)

let test_report_table1_renders () =
  let row =
    {
      Experiments.t1_bench = "sX";
      t1_cells = 100;
      t1_ffs = 10;
      t1_avail = 7;
      t1_cov_pct = 70.0;
      t1_avail4 = 3;
      t1_clock_ps = 4000;
      t1_paper_avail = 8;
      t1_paper_avail4 = 4;
    }
  in
  let s = Report.table1 [ row ] in
  List.iter
    (fun needle ->
      Alcotest.(check bool) needle true (Astring_contains.contains s needle))
    [ "sX"; "70.00"; "Ava. FF [4]"; "Avg." ]

let test_report_table2_dashes () =
  let row =
    {
      Experiments.t2_bench = "sY";
      t2_gk4 = Some { Experiments.oh_cell_pct = 10.0; oh_area_pct = 12.5 };
      t2_gk8 = None;
      t2_gk16 = None;
      t2_hybrid = None;
    }
  in
  let s = Report.table2 [ row ] in
  Alcotest.(check bool) "value" true (Astring_contains.contains s "12.50");
  Alcotest.(check bool) "dash for infeasible" true
    (Astring_contains.contains s " - ")

let test_report_comparison () =
  let row =
    {
      Experiments.cp_scheme = "test-scheme";
      cp_keys = 4;
      cp_outcome = "did things";
      cp_iterations = 9;
      cp_decrypted = false;
    }
  in
  let s = Report.comparison [ row ] in
  Alcotest.(check bool) "scheme" true (Astring_contains.contains s "test-scheme");
  Alcotest.(check bool) "NO marker" true (Astring_contains.contains s "NO")

(* ----- Waveform rendering ----- *)

let test_waveform_render () =
  let w =
    Waveform.make ~initial:Logic.F
      [ (200, Logic.T); (500, Logic.F); (700, Logic.X) ]
  in
  let s = Waveform.render ~t0:0 ~t1:900 ~step:100 [ ("sig", w) ] in
  let lines = String.split_on_char '\n' s in
  (match lines with
  | wave :: _ruler :: _ ->
    Alcotest.(check bool) "label" true (String.length wave > 4 && String.sub wave 0 3 = "sig");
    Alcotest.(check bool) "rising edge" true (String.contains wave '/');
    Alcotest.(check bool) "falling edge" true (String.contains wave '\\');
    Alcotest.(check bool) "unknown" true (String.contains wave 'x')
  | _ -> Alcotest.fail "render shape");
  Alcotest.(check bool) "ruler has origin" true (Astring_contains.contains s "|0")

let render_total_width_law (a, b) =
  let t0 = 0 and t1 = 100 + (abs a mod 2000) in
  let step = 10 + (abs b mod 90) in
  let w = Waveform.constant Logic.T in
  let s = Waveform.render ~t0 ~t1 ~step [ ("x", w) ] in
  match String.split_on_char '\n' s with
  | wave :: _ -> String.length wave = 3 + ((t1 - t0) / step) + 1
  | [] -> false

(* ----- Design_flow report formatting ----- *)

let test_flow_on_benchmark () =
  (* the flow also works on a real-sized benchmark *)
  let spec = Option.get (Benchmarks.find_spec "s15850") in
  let net = Benchmarks.load spec in
  let design, report =
    Design_flow.run ~seed:9 ~clock_margin:spec.Benchmarks.clk_margin net
      ~n_gks:4
  in
  Alcotest.(check int) "4 GKs" 4 (List.length design.Insertion.placements);
  Alcotest.(check bool) "overhead sane" true
    (report.Design_flow.cell_overhead_pct > 1.0
    && report.Design_flow.cell_overhead_pct < 60.0);
  Alcotest.(check int) "timing entries per FF"
    (List.length (Netlist.ffs design.Insertion.lnet))
    (List.length report.Design_flow.timing_entries)

let suites =
  [
    ( "core.stimuli",
      [
        tc "edge aligned" `Quick test_stimuli_edge_aligned;
        tc "po agreement" `Quick test_stimuli_po_agreement;
        tc "cycle inputs" `Quick test_stimuli_cycle_inputs;
      ] );
    ( "core.report",
      [
        tc "table1" `Quick test_report_table1_renders;
        tc "table2 dashes" `Quick test_report_table2_dashes;
        tc "comparison" `Quick test_report_comparison;
      ] );
    ( "core.render",
      [
        tc "waveform ascii" `Quick test_waveform_render;
        qcheck "render width" QCheck.(pair int int) render_total_width_law;
      ] );
    ("core.design_flow", [ tc "benchmark scale" `Slow test_flow_on_benchmark ]);
  ]
