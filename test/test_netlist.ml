(* Tests for the netlist substrate: cells, the graph, .bench I/O, the
   generator, structural analyses and the FF-boundary cut. *)

let tc = Alcotest.test_case

let qcheck ?(count = 100) name arb law = Qc.qcheck ~count name arb law

(* Small deterministic generated circuits for property tests. *)
let gen_circuit_arb =
  QCheck.make
    ~print:(fun seed -> Printf.sprintf "circuit seed %d" seed)
    QCheck.Gen.(map (fun s -> s) (int_bound 1000))

let small_circuit seed =
  Generator.generate
    {
      Generator.gen_name = Printf.sprintf "t%d" seed;
      seed;
      n_pi = 4 + (seed mod 4);
      n_po = 2 + (seed mod 3);
      n_ff = seed mod 6;
      n_gates = 15 + (seed mod 30);
      depth = 4 + (seed mod 5);
      ff_depth_bias = 0.3;
    }

(* ----- Cell ----- *)

let test_cell_eval_unary () =
  Alcotest.(check bool) "not 1" false (Cell.eval Cell.Not [| true |]);
  Alcotest.(check bool) "not 0" true (Cell.eval Cell.Not [| false |]);
  Alcotest.(check bool) "buf 1" true (Cell.eval Cell.Buf [| true |])

let test_cell_eval_binary () =
  let t = true and f = false in
  Alcotest.(check bool) "and" false (Cell.eval Cell.And [| t; f |]);
  Alcotest.(check bool) "nand" true (Cell.eval Cell.Nand [| t; f |]);
  Alcotest.(check bool) "or" true (Cell.eval Cell.Or [| t; f |]);
  Alcotest.(check bool) "nor" false (Cell.eval Cell.Nor [| t; f |]);
  Alcotest.(check bool) "xor" true (Cell.eval Cell.Xor [| t; f |]);
  Alcotest.(check bool) "xnor" false (Cell.eval Cell.Xnor [| t; f |])

let test_cell_eval_wide () =
  Alcotest.(check bool) "and3" true (Cell.eval Cell.And [| true; true; true |]);
  Alcotest.(check bool) "nor4" true
    (Cell.eval Cell.Nor [| false; false; false; false |]);
  (* wide xor = parity *)
  Alcotest.(check bool) "xor3 parity" true
    (Cell.eval Cell.Xor [| true; true; true |]);
  Alcotest.(check bool) "xnor3" false
    (Cell.eval Cell.Xnor [| true; true; true |])

let test_cell_eval_mux () =
  (* mux sel a b = if sel then b else a *)
  Alcotest.(check bool) "sel0" true (Cell.eval Cell.Mux [| false; true; false |]);
  Alcotest.(check bool) "sel1" false (Cell.eval Cell.Mux [| true; true; false |])

let test_cell_arity () =
  Alcotest.(check bool) "not/1" true (Cell.arity_ok Cell.Not 1);
  Alcotest.(check bool) "not/2" false (Cell.arity_ok Cell.Not 2);
  Alcotest.(check bool) "mux/3" true (Cell.arity_ok Cell.Mux 3);
  Alcotest.(check bool) "mux/2" false (Cell.arity_ok Cell.Mux 2);
  Alcotest.(check bool) "and/5" true (Cell.arity_ok Cell.And 5);
  Alcotest.(check bool) "and/1" false (Cell.arity_ok Cell.And 1);
  Alcotest.check_raises "eval arity"
    (Invalid_argument "Cell.eval: arity 1 illegal for this function")
    (fun () -> ignore (Cell.eval Cell.And [| true |]))

let test_cell_names () =
  List.iter
    (fun fn ->
      match Cell.fn_of_name (Cell.fn_name fn) with
      | Some fn' -> Alcotest.(check bool) (Cell.fn_name fn) true (fn = fn')
      | None -> Alcotest.fail "name round trip")
    [ Cell.Not; Cell.Buf; Cell.And; Cell.Or; Cell.Nand; Cell.Nor; Cell.Xor;
      Cell.Xnor; Cell.Mux ];
  Alcotest.(check bool) "INV alias" true (Cell.fn_of_name "inv" = Some Cell.Not);
  Alcotest.(check bool) "unknown" true (Cell.fn_of_name "FROB" = None)

(* ----- Cell_lib ----- *)

let test_cell_lib_bind () =
  let c = Cell_lib.bind Cell.Nand 2 in
  Alcotest.(check string) "nand2" "NAND2X1" c.Cell.cell_name;
  let c3 = Cell_lib.bind Cell.Nand 3 in
  Alcotest.(check int) "nand3 arity" 3 c3.Cell.arity;
  (* beyond the widest stocked cell: extrapolated *)
  let c6 = Cell_lib.bind Cell.Nand 6 in
  Alcotest.(check int) "nand6 arity" 6 c6.Cell.arity;
  Alcotest.(check bool) "nand6 slower" true
    (c6.Cell.delay_ps > c3.Cell.delay_ps);
  Alcotest.check_raises "mux arity"
    (Invalid_argument "Cell_lib.bind: arity 2 illegal for MUX") (fun () ->
      ignore (Cell_lib.bind Cell.Mux 2))

let test_cell_lib_find () =
  Alcotest.(check bool) "find inv" true (Cell_lib.find "INVX1" <> None);
  Alcotest.(check bool) "find dly8" true (Cell_lib.find "DLY8X1" <> None);
  Alcotest.(check bool) "find none" true (Cell_lib.find "NOPE" = None)

let test_cell_lib_delay_cells () =
  let std = Cell_lib.delay_cells `Standard in
  let bufs = Cell_lib.delay_cells `Buffers_only in
  Alcotest.(check bool) "std has dly" true
    (List.exists (fun c -> c.Cell.cell_name = "DLY8X1") std);
  Alcotest.(check bool) "bufs-only has no dly" true
    (not (List.exists (fun c -> c.Cell.delay_ps > 100) bufs));
  let c = Cell_lib.custom_delay_cell 1234 in
  Alcotest.(check int) "custom exact" 1234 c.Cell.delay_ps

let test_lut_costs () =
  Alcotest.(check bool) "lut area grows" true
    (Cell_lib.lut_area 4 > Cell_lib.lut_area 2);
  Alcotest.(check bool) "lut delay grows" true
    (Cell_lib.lut_delay_ps 6 > Cell_lib.lut_delay_ps 2)

(* ----- Netlist graph ----- *)

let test_netlist_build () =
  let n = Netlist.create "t" in
  let a = Netlist.add_input n "a" in
  let b = Netlist.add_input n "b" in
  let g = Netlist.add_gate n ~name:"g" Cell.And [| a; b |] in
  let f = Netlist.add_ff n ~name:"f" g in
  Netlist.add_output n "y" f;
  Netlist.validate n;
  Alcotest.(check int) "nodes" 4 (Netlist.num_nodes n);
  Alcotest.(check (list int)) "inputs" [ a; b ] (Netlist.inputs n);
  Alcotest.(check (list int)) "ffs" [ f ] (Netlist.ffs n);
  Alcotest.(check bool) "find" true (Netlist.find n "g" = Some g);
  Alcotest.(check (list (pair string int))) "outputs" [ ("y", f) ]
    (Netlist.outputs n)

let test_netlist_duplicate_names () =
  let n = Netlist.create "t" in
  ignore (Netlist.add_input n "a");
  Alcotest.check_raises "dup" (Invalid_argument "Netlist: duplicate node name \"a\"")
    (fun () -> ignore (Netlist.add_input n "a"))

let test_netlist_const_sharing () =
  let n = Netlist.create "t" in
  let c1 = Netlist.add_const n true in
  let c2 = Netlist.add_const n true in
  let c3 = Netlist.add_const n false in
  Alcotest.(check int) "shared" c1 c2;
  Alcotest.(check bool) "distinct" true (c1 <> c3)

let test_netlist_cycle_detection () =
  let n = Netlist.create "t" in
  let a = Netlist.add_input n "a" in
  let g1 = Netlist.add_gate n Cell.And [| a; a |] in
  let g2 = Netlist.add_gate n Cell.Or [| g1; a |] in
  (* create a combinational cycle g1 <- g2 *)
  Netlist.set_fanin n ~node_id:g1 ~pin:1 ~driver:g2;
  (match Netlist.validate n with
  | () -> Alcotest.fail "cycle not detected"
  | exception Failure _ -> ());
  (* sequential loop through a FF is fine *)
  let n2 = Netlist.create "t2" in
  let a2 = Netlist.add_input n2 "a" in
  let placeholder = Netlist.add_const n2 false in
  let f = Netlist.add_ff n2 placeholder in
  let g = Netlist.add_gate n2 Cell.Xor [| a2; f |] in
  Netlist.set_fanin n2 ~node_id:f ~pin:0 ~driver:g;
  Netlist.add_output n2 "y" g;
  Netlist.validate n2

let test_netlist_replace_uses () =
  let n = Netlist.create "t" in
  let a = Netlist.add_input n "a" in
  let b = Netlist.add_input n "b" in
  let g = Netlist.add_gate n Cell.And [| a; a |] in
  Netlist.add_output n "y" a;
  Netlist.replace_uses n ~old_id:a ~new_id:b;
  Alcotest.(check int) "pin0" b (Netlist.node n g).Netlist.fanins.(0);
  Alcotest.(check int) "pin1" b (Netlist.node n g).Netlist.fanins.(1);
  Alcotest.(check (list (pair string int))) "po" [ ("y", b) ] (Netlist.outputs n)

let test_netlist_copy_compact () =
  let net = small_circuit 17 in
  let c = Netlist.copy net in
  Alcotest.(check int) "copy size" (Netlist.num_nodes net) (Netlist.num_nodes c);
  (* kill an output-free node pattern: add a gate then kill it *)
  let a = List.hd (Netlist.inputs c) in
  let g = Netlist.add_gate c Cell.Not [| a |] in
  Netlist.kill c g;
  let c2, remap = Netlist.compact c in
  Netlist.validate c2;
  Alcotest.(check int) "compacted" (Netlist.num_nodes c) (Netlist.num_nodes c2 + 1);
  Alcotest.(check int) "dead remap" (-1) remap.(g)

let test_netlist_widen () =
  let n = Netlist.create "t" in
  let a = Netlist.add_input n "a" in
  let b = Netlist.add_input n "b" in
  let c = Netlist.add_input n "c" in
  let g = Netlist.add_gate n Cell.And [| a; b |] in
  Netlist.widen_gate n ~node_id:g ~extra_driver:c;
  Alcotest.(check int) "arity 3" 3 (Array.length (Netlist.node n g).Netlist.fanins);
  Alcotest.(check string) "rebound cell" "AND3X1"
    (Option.get (Netlist.node n g).Netlist.cell).Cell.cell_name;
  let m = Netlist.add_gate n Cell.Mux [| a; b; c |] in
  Alcotest.check_raises "mux fixed"
    (Invalid_argument "Netlist.widen_gate: not a variadic gate") (fun () ->
      Netlist.widen_gate n ~node_id:m ~extra_driver:a)

let test_eval_comb () =
  let n = Netlist.create "t" in
  let a = Netlist.add_input n "a" in
  let b = Netlist.add_input n "b" in
  let x = Netlist.add_gate n Cell.Xor [| a; b |] in
  let l = Netlist.add_lut n ~truth:[| true; false; false; true |] [| a; b |] in
  Netlist.add_output n "x" x;
  Netlist.add_output n "l" l;
  List.iter
    (fun (va, vb) ->
      let values = Netlist.eval_comb n (fun id -> if id = a then va else vb) in
      Alcotest.(check bool) "xor" (va <> vb) values.(x);
      Alcotest.(check bool) "lut=xnor" (va = vb) values.(l))
    [ (false, false); (false, true); (true, false); (true, true) ]

let topo_order_law seed =
  let net = small_circuit seed in
  let order = Netlist.comb_topo_order net in
  let position = Hashtbl.create 64 in
  List.iteri (fun i id -> Hashtbl.replace position id i) order;
  List.for_all
    (fun id ->
      let nd = Netlist.node net id in
      Array.for_all
        (fun f ->
          if Netlist.is_comb (Netlist.node net f) then
            Hashtbl.find position f < Hashtbl.find position id
          else true)
        nd.Netlist.fanins)
    order

(* ----- Bench_format ----- *)

let test_bench_roundtrip_s27 () =
  let net = Benchmarks.s27 () in
  let txt = Bench_format.print net in
  let net2 = Bench_format.parse ~name:"s27" txt in
  Alcotest.(check bool) "stats equal" true
    (Stats.of_netlist net = Stats.of_netlist net2);
  (* functional equivalence of the combinational views *)
  let c1, _ = Combinationalize.run net in
  let c2, _ = Combinationalize.run net2 in
  match Equiv.check c1 c2 with
  | Equiv.Equivalent -> ()
  | Equiv.Different _ -> Alcotest.fail "round trip changed the function"

let bench_roundtrip_law seed =
  let net = small_circuit seed in
  let txt = Bench_format.print net in
  let net2 = Bench_format.parse ~name:(Netlist.name net) txt in
  let c1, _ = Combinationalize.run net in
  let c2, _ = Combinationalize.run net2 in
  Equiv.check c1 c2 = Equiv.Equivalent

(* The fuzzer's adversarial generator reaches shapes the Generator never
   makes (small LUTs, MUXes, wide gates, repeated fanins); the full
   print/parse/unroll/miter pipeline is the sat-roundtrip oracle. *)
let bench_adversarial_roundtrip_law seed =
  let rng = Random.State.make [| seed; 0xbe5 |] in
  let case = Netlist_gen.case rng in
  Diff_oracle.check ~oracles:[ Diff_oracle.Sat_roundtrip ] ~seed case = []

(* Found by fuzzing: a 2-row truth table prints as one whole hex nibble,
   so the parser must trim the padding back to 2^arity rows. *)
let test_bench_lut_arity1 () =
  let net = Netlist.create "l1" in
  let a = Netlist.add_input net "a" in
  let l = Netlist.add_lut net ~name:"inv" ~truth:[| true; false |] [| a |] in
  Netlist.add_output net "y" l;
  let net2 = Bench_format.parse ~name:"l1" (Bench_format.print net) in
  (match Equiv.check net net2 with
  | Equiv.Equivalent -> ()
  | Equiv.Different _ -> Alcotest.fail "1-input LUT changed function");
  match Bench_format.parse ~name:"bad" "INPUT(a)\nOUTPUT(y)\ny = LUT 0xe (a)\n" with
  | exception Bench_format.Parse_error _ -> ()
  | _ -> Alcotest.fail "out-of-range LUT row accepted"

let test_bench_parse_errors () =
  let bad text msg =
    match Bench_format.parse ~name:"x" text with
    | _ -> Alcotest.fail ("no error for " ^ msg)
    | exception Bench_format.Parse_error (_, _) -> ()
  in
  bad "INPUT(a)\nOUTPUT(y)\n" "undefined output";
  bad "INPUT(a)\ny = FROB(a)\nOUTPUT(y)\n" "unknown gate";
  bad "INPUT(a)\ny = AND(a)\nOUTPUT(y)\n" "bad arity";
  bad "INPUT(a)\ny = AND(a, z)\nOUTPUT(y)\n" "undefined signal";
  bad "INPUT(a)\ny = AND(a, y)\nOUTPUT(y)\n" "combinational cycle";
  bad "INPUT(a)\nINPUT(a)\n" "duplicate input"

let test_bench_comments_and_lut () =
  let text =
    "# a comment\nINPUT(a)  # trailing\nINPUT(b)\nOUTPUT(y)\n\
     y = LUT 0x6 (a, b)\n"
  in
  let net = Bench_format.parse ~name:"l" text in
  let values b0 b1 =
    let a = Option.get (Netlist.find net "a") in
    (Netlist.eval_comb net (fun id -> if id = a then b0 else b1)).(Option.get (Netlist.find net "y"))
  in
  (* 0x6 = 0110 : XOR *)
  Alcotest.(check bool) "00" false (values false false);
  Alcotest.(check bool) "01" true (values true false);
  Alcotest.(check bool) "10" true (values false true);
  Alcotest.(check bool) "11" false (values true true)

let test_bench_dff_cycle () =
  (* two FFs feeding each other *)
  let text =
    "INPUT(a)\nOUTPUT(y)\nf1 = DFF(f2)\nf2 = DFF(g)\ng = AND(a, f1)\ny = NOT(f2)\n"
  in
  let net = Bench_format.parse ~name:"c" text in
  Netlist.validate net;
  Alcotest.(check int) "ffs" 2 (List.length (Netlist.ffs net))

(* ----- Generator ----- *)

let test_generator_deterministic () =
  let cfg = (List.hd Benchmarks.specs).Benchmarks.config in
  let a = Generator.generate cfg and b = Generator.generate cfg in
  Alcotest.(check string) "same netlist" (Bench_format.print a) (Bench_format.print b)

let test_generator_counts () =
  List.iter
    (fun spec ->
      let net = Benchmarks.load spec in
      let st = Stats.of_netlist net in
      Alcotest.(check int)
        (spec.Benchmarks.bname ^ " cells")
        spec.Benchmarks.cells st.Stats.cells;
      Alcotest.(check int)
        (spec.Benchmarks.bname ^ " ffs")
        spec.Benchmarks.ff_count st.Stats.ffs)
    [ List.hd Benchmarks.specs; List.nth Benchmarks.specs 1 ]

let generator_live_law seed =
  (* After the liveness pass every gate and FF output has a consumer or
     drives a primary output. *)
  let net = small_circuit seed in
  let fanouts = Netlist.fanout_table net in
  let drives_po id = List.exists (fun (_, d) -> d = id) (Netlist.outputs net) in
  List.for_all
    (fun id ->
      let nd = Netlist.node net id in
      match nd.Netlist.kind with
      | Netlist.Gate _ | Netlist.Ff -> fanouts.(id) <> [] || drives_po id
      | Netlist.Input | Netlist.Const _ | Netlist.Lut _ | Netlist.Dead -> true)
    (List.init (Netlist.num_nodes net) Fun.id)

(* ----- Topo ----- *)

let test_topo_levels_depth () =
  let n = Netlist.create "t" in
  let a = Netlist.add_input n "a" in
  let g1 = Netlist.add_gate n Cell.Not [| a |] in
  let g2 = Netlist.add_gate n Cell.Not [| g1 |] in
  let g3 = Netlist.add_gate n Cell.And [| g2; a |] in
  Netlist.add_output n "y" g3;
  let lv = Topo.levels n in
  Alcotest.(check int) "a" 0 lv.(a);
  Alcotest.(check int) "g1" 1 lv.(g1);
  Alcotest.(check int) "g2" 2 lv.(g2);
  Alcotest.(check int) "g3" 3 lv.(g3);
  Alcotest.(check int) "depth" 3 (Topo.depth n)

let test_topo_cones () =
  let net = Benchmarks.s27 () in
  let g11 = Option.get (Netlist.find net "G11") in
  let cone = Topo.output_cone net g11 in
  Alcotest.(check (list string)) "G11 reaches G17" [ "G17" ] cone;
  let fanin = Topo.fanin_cone net g11 in
  Alcotest.(check bool) "fanin contains itself" true (List.mem g11 fanin)

let test_topo_ff_groups () =
  let net = Benchmarks.s27 () in
  let groups = Topo.group_ffs_by_cone net in
  let total = List.fold_left (fun a g -> a + List.length g) 0 groups in
  Alcotest.(check int) "all ffs grouped" 3 total

(* ----- Stats ----- *)

let test_stats_overhead () =
  let net = Benchmarks.s27 () in
  let base = Stats.of_netlist net in
  let bigger = Netlist.copy net in
  let a = List.hd (Netlist.inputs bigger) in
  ignore (Netlist.add_gate bigger Cell.Not [| a |]);
  let locked = Stats.of_netlist bigger in
  let cell_oh, area_oh = Stats.overhead ~baseline:base ~locked in
  Alcotest.(check bool) "cell oh positive" true (cell_oh > 0.0);
  Alcotest.(check bool) "area oh positive" true (area_oh > 0.0)

(* ----- Combinationalize ----- *)

let test_combinationalize_structure () =
  let net = Benchmarks.s27 () in
  let comb, maps = Combinationalize.run net in
  Alcotest.(check int) "no ffs" 0 (List.length (Netlist.ffs comb));
  Alcotest.(check int) "3 mappings" 3 (List.length maps);
  Alcotest.(check int) "pis = 4 + 3" 7 (List.length (Netlist.inputs comb));
  Alcotest.(check int) "pos = 1 + 3" 4 (List.length (Netlist.outputs comb))

let combinationalize_step_law seed =
  (* One sequential step equals a combinational evaluation through the
     pseudo boundary. *)
  let net = small_circuit (seed + 3) in
  if Netlist.ffs net = [] then true
  else begin
    let comb, maps = Combinationalize.run net in
    let rng = Random.State.make [| seed |] in
    let pi_values = Hashtbl.create 16 in
    List.iter
      (fun pi ->
        Hashtbl.replace pi_values (Netlist.node net pi).Netlist.name
          (Random.State.bool rng))
      (Netlist.inputs net);
    (* sequential step from the all-zero state *)
    let sim = Cycle_sim.create net in
    let values =
      Cycle_sim.step sim ~inputs:(fun id ->
          Hashtbl.find pi_values (Netlist.node net id).Netlist.name)
    in
    (* combinational evaluation with ppi_* = 0 *)
    let comb_in id =
      let name = (Netlist.node comb id).Netlist.name in
      match Hashtbl.find_opt pi_values name with
      | Some v -> v
      | None -> false (* pseudo inputs: all-zero state *)
    in
    let comb_values = Netlist.eval_comb comb comb_in in
    List.for_all
      (fun m ->
        let ff = Option.get (Netlist.find net m.Combinationalize.ff_name) in
        let next_seq = List.assoc ff (Cycle_sim.state sim) in
        let ppo = List.assoc m.Combinationalize.ppo (Netlist.outputs comb) in
        ignore values;
        next_seq = comb_values.(ppo))
      maps
  end

let suites =
  [
    ( "netlist.cell",
      [
        tc "unary" `Quick test_cell_eval_unary;
        tc "binary" `Quick test_cell_eval_binary;
        tc "wide" `Quick test_cell_eval_wide;
        tc "mux" `Quick test_cell_eval_mux;
        tc "arity" `Quick test_cell_arity;
        tc "names" `Quick test_cell_names;
      ] );
    ( "netlist.cell_lib",
      [
        tc "bind" `Quick test_cell_lib_bind;
        tc "find" `Quick test_cell_lib_find;
        tc "delay cells" `Quick test_cell_lib_delay_cells;
        tc "lut costs" `Quick test_lut_costs;
      ] );
    ( "netlist.graph",
      [
        tc "build" `Quick test_netlist_build;
        tc "duplicate names" `Quick test_netlist_duplicate_names;
        tc "const sharing" `Quick test_netlist_const_sharing;
        tc "cycle detection" `Quick test_netlist_cycle_detection;
        tc "replace_uses" `Quick test_netlist_replace_uses;
        tc "copy/compact" `Quick test_netlist_copy_compact;
        tc "widen_gate" `Quick test_netlist_widen;
        tc "eval_comb" `Quick test_eval_comb;
        qcheck "topo order respects fanins" gen_circuit_arb topo_order_law;
      ] );
    ( "netlist.bench_format",
      [
        tc "s27 round trip" `Quick test_bench_roundtrip_s27;
        tc "parse errors" `Quick test_bench_parse_errors;
        tc "comments + LUT" `Quick test_bench_comments_and_lut;
        tc "through-FF cycles" `Quick test_bench_dff_cycle;
        qcheck ~count:30 "generated round trip" gen_circuit_arb
          bench_roundtrip_law;
        tc "1-input LUT nibble padding" `Quick test_bench_lut_arity1;
        qcheck ~count:25 "adversarial round trip (miter)"
          QCheck.(int_bound 1_000_000) bench_adversarial_roundtrip_law;
      ] );
    ( "netlist.generator",
      [
        tc "deterministic" `Quick test_generator_deterministic;
        tc "matches published counts" `Quick test_generator_counts;
        qcheck ~count:30 "no dead logic" gen_circuit_arb generator_live_law;
      ] );
    ( "netlist.topo",
      [
        tc "levels/depth" `Quick test_topo_levels_depth;
        tc "cones" `Quick test_topo_cones;
        tc "ff groups" `Quick test_topo_ff_groups;
      ] );
    ("netlist.stats", [ tc "overhead" `Quick test_stats_overhead ]);
    ( "netlist.combinationalize",
      [
        tc "structure" `Quick test_combinationalize_structure;
        qcheck ~count:30 "one step equals comb eval" gen_circuit_arb
          combinationalize_step_law;
      ] );
  ]
