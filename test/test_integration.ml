(* End-to-end tests: the experiment drivers that regenerate the paper's
   tables and figures, and a full lock → verify → attack pipeline. *)

let tc = Alcotest.test_case

(* ----- Table I ----- *)

let test_table1_s5378 () =
  (* fully deterministic: pin the calibrated values so regressions in the
     generator, STA or feasibility rules are caught *)
  let spec = Option.get (Benchmarks.find_spec "s5378") in
  let row = Experiments.table1_row spec in
  Alcotest.(check int) "cells" 775 row.Experiments.t1_cells;
  Alcotest.(check int) "ffs" 163 row.Experiments.t1_ffs;
  Alcotest.(check bool) "coverage in the paper's ballpark" true
    (abs_float (row.Experiments.t1_cov_pct -. 63.80) < 15.0);
  Alcotest.(check bool) "avail4 <= avail" true
    (row.Experiments.t1_avail4 <= row.Experiments.t1_avail)

let test_table1_full () =
  let rows = Experiments.table1 () in
  Alcotest.(check int) "seven benchmarks" 7 (List.length rows);
  let avg =
    List.fold_left (fun a r -> a +. r.Experiments.t1_cov_pct) 0.0 rows /. 7.0
  in
  (* the paper's average coverage is 64.07% *)
  Alcotest.(check bool)
    (Printf.sprintf "average coverage %.2f ~ 64.07" avg)
    true
    (abs_float (avg -. 64.07) < 8.0);
  (* rendering works and mentions every benchmark *)
  let rendered = Report.table1 rows in
  List.iter
    (fun spec ->
      Alcotest.(check bool) spec.Benchmarks.bname true
        (Astring_contains.contains rendered spec.Benchmarks.bname))
    Benchmarks.specs

(* ----- Table II ----- *)

let test_table2_s5378 () =
  let spec = Option.get (Benchmarks.find_spec "s5378") in
  let row = Experiments.table2_row spec in
  let cell4 = (Option.get row.Experiments.t2_gk4).Experiments.oh_cell_pct in
  let cell8 = (Option.get row.Experiments.t2_gk8).Experiments.oh_cell_pct in
  let cell16 = (Option.get row.Experiments.t2_gk16).Experiments.oh_cell_pct in
  let hybrid = (Option.get row.Experiments.t2_hybrid).Experiments.oh_cell_pct in
  (* the paper's shape: overhead grows with GK count, roughly doubling,
     and the hybrid at 32 key-inputs is much cheaper than 16 GKs *)
  Alcotest.(check bool) "monotone" true (cell4 < cell8 && cell8 < cell16);
  Alcotest.(check bool) "roughly doubles" true
    (cell16 /. cell8 > 1.5 && cell16 /. cell8 < 2.5);
  Alcotest.(check bool) "hybrid beats 16 GKs" true (hybrid < cell16);
  Alcotest.(check bool) "4 GKs near the paper's 10%" true
    (cell4 > 5.0 && cell4 < 20.0)

(* ----- SAT-attack table ----- *)

let test_sat_attack_row () =
  let spec = Option.get (Benchmarks.find_spec "s15850") in
  let row = Experiments.sat_attack_on_gk spec ~n_gks:8 in
  Alcotest.(check bool) "unsat at first" true row.Experiments.at_unsat_at_first;
  Alcotest.(check int) "no DIPs" 0 row.Experiments.at_iterations;
  (* after KEYGEN stripping each GK exposes a single key pin *)
  Alcotest.(check int) "8 key inputs" 8 row.Experiments.at_keys;
  Alcotest.(check bool) "recovered key wrong on chip" true
    (row.Experiments.at_key_mismatches > 0)

(* ----- Figures ----- *)

let test_fig4_content () =
  let s = Experiments.fig4 () in
  Alcotest.(check bool) "mentions glitch lengths" true
    (Astring_contains.contains s "3090 ps"
    && Astring_contains.contains s "2090 ps")

let test_fig7_content () =
  let s = Experiments.fig7 () in
  List.iter
    (fun needle ->
      Alcotest.(check bool) needle true (Astring_contains.contains s needle))
    [ "on-level"; "glitch-early"; "glitch-late"; "glitchless"; "violations=0" ]

let test_fig9_content () =
  let s = Experiments.fig9 () in
  Alcotest.(check bool) "eq5 window" true
    (Astring_contains.contains s "(6000, 7000)");
  Alcotest.(check bool) "eq6 window" true
    (Astring_contains.contains s "(1000, 4000)")

let test_fig6_content () =
  let s = Experiments.fig6 () in
  Alcotest.(check bool) "four rows" true
    (Astring_contains.contains s "(0,0) const0"
    && Astring_contains.contains s "(1,1) const1")

(* ----- Ablations ----- *)

let test_ablation_glitch_monotone () =
  let rows = Experiments.ablation_glitch_length ~lengths:[ 1000; 2000 ] () in
  match rows with
  | [ r1000; r2000 ] ->
    List.iter2
      (fun (b1, a1) (b2, a2) ->
        Alcotest.(check string) "same bench" b1 b2;
        Alcotest.(check bool)
          (Printf.sprintf "%s: longer glitch, fewer sites" b1)
          true (a2 <= a1))
      r1000.Experiments.ag_avail r2000.Experiments.ag_avail
  | _ -> Alcotest.fail "two rows expected"

let test_ablation_profile_order () =
  let rows = Experiments.ablation_delay_profile () in
  match rows with
  | [ bufs; std; custom ] ->
    Alcotest.(check bool) "buffers-only worst" true
      (bufs.Experiments.ap_cell_oh_pct > std.Experiments.ap_cell_oh_pct);
    Alcotest.(check bool) "custom best (cells)" true
      (custom.Experiments.ap_cell_oh_pct < std.Experiments.ap_cell_oh_pct);
    Alcotest.(check bool) "delay-cell counts ordered" true
      (bufs.Experiments.ap_delay_cells > std.Experiments.ap_delay_cells
      && std.Experiments.ap_delay_cells > custom.Experiments.ap_delay_cells)
  | _ -> Alcotest.fail "three profiles expected"

(* ----- Corruptibility ----- *)

let test_corruptibility () =
  let rows = Experiments.corruptibility ~bench:"s5378" ~n_gks:8 () in
  let find label =
    List.find
      (fun r ->
        String.length r.Experiments.co_key >= String.length label
        && String.sub r.Experiments.co_key 0 (String.length label) = label)
      rows
  in
  let correct = find "correct key" in
  Alcotest.(check (float 0.001)) "correct key clean" 0.0
    correct.Experiments.co_po_mismatch_pct;
  Alcotest.(check int) "correct key no violations" 0
    correct.Experiments.co_violations;
  let const0 = find "all-zeros" in
  Alcotest.(check bool) "constants corrupt" true
    (const0.Experiments.co_po_mismatch_pct > 0.0);
  let mistimed = find "opposite branch" in
  Alcotest.(check bool) "mistimed transitions violate timing" true
    (mistimed.Experiments.co_violations > 0)

(* ----- Full pipeline on one design ----- *)

let test_full_pipeline () =
  let net = Benchmarks.tiny () in
  let clock_ps = Sta.clock_for net ~margin:4.5 in
  (* 1. lock *)
  let d = Insertion.lock ~seed:3 net ~clock_ps ~n_gks:3 in
  Netlist.validate d.Insertion.lnet;
  (* 2. verify with the correct key on the timing simulator *)
  let cycles = 12 in
  let cfg = { Timing_sim.clock_ps; cycles } in
  let stim n = Stimuli.edge_aligned ~seed:8 n ~clock_ps ~cycles in
  let base =
    Timing_sim.run ~drive:(stim net) ~captures_from:(fun _ -> 1) net cfg
  in
  let ok =
    Timing_sim.run
      ~drive:
        (Insertion.timing_drive ~other:(stim d.Insertion.lnet) d
           d.Insertion.correct_key)
      ~captures_from:(Insertion.capture_policy d) d.Insertion.lnet cfg
  in
  let mism, total = Stimuli.po_agreement ~skip:0 base ok in
  Alcotest.(check int) "correct key transparent" 0 mism;
  Alcotest.(check bool) "compared something" true (total > 0);
  (* 3. P&R sanity *)
  let pl = Placer.place d.Insertion.lnet in
  Alcotest.(check bool) "placeable" true (pl.Placer.hpwl_um > 0.0);
  (* 4. the attacker's pipeline fails *)
  let stripped, keys = Insertion.strip_keygens d in
  let locked_comb, _ = Combinationalize.run stripped in
  let oracle_comb, _ = Combinationalize.run net in
  let oracle = Sat_attack.oracle_of_netlist oracle_comb in
  (match
     (Sat_attack.run ~locked:locked_comb ~key_inputs:keys ~oracle ())
       .Sat_attack.status
   with
  | Sat_attack.Unsat_at_first_iteration _ -> ()
  | Sat_attack.Key_recovered _ | Sat_attack.Budget_exhausted ->
    Alcotest.fail "SAT attack should be starved");
  (* 5. bench I/O round trip of the locked design *)
  let txt = Bench_format.print d.Insertion.lnet in
  let back = Bench_format.parse ~name:"locked" txt in
  (* the printer adds one alias buffer per output whose name is not a
     node name; everything else must round-trip *)
  let cells = (Stats.of_netlist d.Insertion.lnet).Stats.cells in
  let cells' = (Stats.of_netlist back).Stats.cells in
  Alcotest.(check bool) "locked round trip" true
    (cells' >= cells
    && cells' <= cells + List.length (Netlist.outputs d.Insertion.lnet))

let suites =
  [
    ( "integration.tables",
      [
        tc "table1 s5378" `Slow test_table1_s5378;
        tc "table1 full" `Slow test_table1_full;
        tc "table2 s5378 shape" `Slow test_table2_s5378;
        tc "sat-attack row" `Slow test_sat_attack_row;
      ] );
    ( "integration.figures",
      [
        tc "fig4" `Quick test_fig4_content;
        tc "fig6" `Quick test_fig6_content;
        tc "fig7" `Quick test_fig7_content;
        tc "fig9" `Quick test_fig9_content;
      ] );
    ( "integration.ablations",
      [
        tc "glitch length monotone" `Slow test_ablation_glitch_monotone;
        tc "profile ordering" `Slow test_ablation_profile_order;
      ] );
    ("integration.corruptibility", [ tc "key classes" `Slow test_corruptibility ]);
    ("integration.pipeline", [ tc "lock/verify/attack" `Quick test_full_pipeline ]);
  ]
