(* Tests for every locking scheme: the conventional baselines, the
   SAT-resistant baselines, TDK, and the paper's GK/KEYGEN/insertion. *)

let tc = Alcotest.test_case

let qcheck ?(count = 50) name arb law = Qc.qcheck ~count name arb law

let seed_arb = QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 500)

let comb_circuit seed =
  let net =
    Generator.generate
      {
        Generator.gen_name = "lk";
        seed;
        n_pi = 6;
        n_po = 4;
        n_ff = 6;
        n_gates = 30;
        depth = 5;
        ff_depth_bias = 0.3;
      }
  in
  fst (Combinationalize.run net)

(* ----- Key ----- *)

let test_key_ops () =
  let names = [ "k0"; "k1"; "k2" ] in
  let a = Key.random ~seed:1 names in
  Alcotest.(check int) "arity" 3 (List.length a);
  let b = Key.random ~seed:1 names in
  Alcotest.(check bool) "deterministic" true (Key.equal a b);
  let f = Key.flip a "k1" in
  Alcotest.(check bool) "flip changed" false (Key.equal a f);
  Alcotest.(check bool) "flip only k1" true
    (List.assoc "k0" a = List.assoc "k0" f && List.assoc "k1" a <> List.assoc "k1" f);
  let w = Key.random_wrong ~seed:2 a in
  Alcotest.(check bool) "wrong differs" false (Key.equal a w);
  Alcotest.(check int) "enumerate" 8 (List.length (Key.enumerate names));
  Alcotest.check_raises "flip unknown" Not_found (fun () ->
      ignore (Key.flip a "zz"))

(* ----- Locked helpers ----- *)

let test_splice () =
  let n = Netlist.create "s" in
  let a = Netlist.add_input n "a" in
  let g1 = Netlist.add_gate n Cell.Not [| a |] in
  let g2 = Netlist.add_gate n Cell.Not [| g1 |] in
  Netlist.add_output n "y" g1;
  let b =
    Locked.splice_all_fanouts n ~target:g1 ~build:(fun () ->
        Netlist.add_gate n Cell.Buf [| g1 |])
  in
  Alcotest.(check int) "consumer rewired" b (Netlist.node n g2).Netlist.fanins.(0);
  Alcotest.(check (list (pair string int))) "po rewired" [ ("y", b) ]
    (Netlist.outputs n);
  Alcotest.(check int) "buffer reads target" g1 (Netlist.node n b).Netlist.fanins.(0)

(* ----- XOR / MUX locking ----- *)

let xor_correct_key_law seed =
  let comb = comb_circuit seed in
  let lk = Xor_lock.lock ~seed comb ~n_keys:6 in
  Equiv.check ~fixed_b:lk.Locked.correct_key comb lk.Locked.net = Equiv.Equivalent

let mux_correct_key_law seed =
  let comb = comb_circuit seed in
  let lk = Mux_lock.lock ~seed comb ~n_keys:6 in
  Equiv.check ~fixed_b:lk.Locked.correct_key comb lk.Locked.net = Equiv.Equivalent

let test_xor_structure () =
  let comb = comb_circuit 9 in
  let lk = Xor_lock.lock ~seed:9 comb ~n_keys:5 in
  Alcotest.(check int) "key inputs" 5 (List.length lk.Locked.key_inputs);
  Alcotest.(check int) "cells +5" ((Stats.of_netlist comb).Stats.cells + 5)
    (Stats.of_netlist lk.Locked.net).Stats.cells;
  (* with_key_fixed specializes the keys away *)
  let fixed = Locked.with_key_fixed lk lk.Locked.correct_key in
  match Equiv.check comb fixed with
  | Equiv.Equivalent -> ()
  | Equiv.Different _ -> Alcotest.fail "with_key_fixed broke the function"

let test_xor_wrong_key_corrupts () =
  let comb = comb_circuit 10 in
  let lk = Xor_lock.lock ~seed:10 comb ~n_keys:5 in
  (* flipping one key bit inverts an internal wire: find some input where
     outputs differ (true for non-redundant wires; check at least one of
     the 5 flips corrupts) *)
  let corrupts =
    List.exists
      (fun name ->
        Equiv.check ~fixed_b:(Key.flip lk.Locked.correct_key name) comb
          lk.Locked.net
        <> Equiv.Equivalent)
      lk.Locked.key_inputs
  in
  Alcotest.(check bool) "some flip corrupts" true corrupts

let test_mux_acyclic () =
  (* heavy fan-in circuit: decoy choice must never create a cycle *)
  for seed = 1 to 10 do
    let comb = comb_circuit (100 + seed) in
    let lk = Mux_lock.lock ~seed comb ~n_keys:8 in
    Netlist.validate lk.Locked.net
  done

(* Fuzz-found regression (lock-property family): on these case seeds every
   MUX key-gate used to land on a functionally unobservable wire — flipping
   any single key bit left the circuit exactly equivalent, so the lock
   protected nothing.  Target/decoy pairs must now be sampled-observable. *)
let test_mux_flip_observable () =
  List.iter
    (fun seed ->
      let comb =
        fst
          (Combinationalize.run
             (Generator.generate
                {
                  Generator.gen_name = Printf.sprintf "lp%d" seed;
                  seed;
                  n_pi = 6;
                  n_po = 4;
                  n_ff = 6;
                  n_gates = 30;
                  depth = 5;
                  ff_depth_bias = 0.2;
                }))
      in
      let lk = Mux_lock.lock ~seed comb ~n_keys:5 in
      (match Equiv.check ~fixed_b:lk.Locked.correct_key comb lk.Locked.net with
      | Equiv.Equivalent -> ()
      | Equiv.Different _ -> Alcotest.fail "correct key not transparent");
      let corrupting =
        List.filter
          (fun name ->
            Metrics.bit_error_rate ~samples:128 ~seed ~reference:comb lk
              (Key.flip lk.Locked.correct_key name)
            > 0.)
          lk.Locked.key_inputs
      in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: some flip corrupts" seed)
        true
        (corrupting <> []))
    [
      4504999465468316646;
      1956143378011559044;
      2505266000894152716;
      1501109808130665824;
    ]

(* ----- SARLock ----- *)

let test_sarlock_semantics () =
  let comb = comb_circuit 11 in
  let n_keys = 4 in
  let lk = Sarlock.lock ~seed:11 comb ~n_keys in
  (* correct key: full equivalence *)
  (match Equiv.check ~fixed_b:lk.Locked.correct_key comb lk.Locked.net with
  | Equiv.Equivalent -> ()
  | Equiv.Different _ -> Alcotest.fail "correct key not transparent");
  (* wrong key: flips the PO exactly when the comparator matches; check a
     wrong key disagrees somewhere *)
  let wrong = Key.random_wrong ~seed:1 lk.Locked.correct_key in
  Alcotest.(check bool) "wrong key corrupts" true
    (Equiv.check ~fixed_b:wrong comb lk.Locked.net <> Equiv.Equivalent)

let test_sarlock_point_function () =
  (* each wrong key corrupts at most a single input pattern of the
     comparator inputs: count disagreement over all patterns of the chosen
     PIs with other PIs fixed *)
  let comb = comb_circuit 12 in
  let lk = Sarlock.lock ~seed:12 comb ~n_keys:3 in
  let wrong = Key.random_wrong ~seed:5 lk.Locked.correct_key in
  let fixed = Locked.with_key_fixed lk wrong in
  let pis = Netlist.inputs fixed in
  let n = List.length pis in
  if n > 16 then ()
  else begin
    let mismatches = ref 0 in
    for row = 0 to (1 lsl n) - 1 do
      let assign =
        List.mapi (fun i pi -> (pi, row land (1 lsl i) <> 0)) pis
      in
      let v1 = Netlist.eval_comb comb (fun id ->
        let name = (Netlist.node comb id).Netlist.name in
        let id2 = Option.get (Netlist.find fixed name) in
        List.assoc id2 assign) in
      let v2 = Netlist.eval_comb fixed (fun id -> List.assoc id assign) in
      let differs =
        List.exists
          (fun (po, d2) -> v2.(d2) <> v1.(List.assoc po (Netlist.outputs comb)))
          (Netlist.outputs fixed)
      in
      if differs then incr mismatches
    done;
    (* one comparator pattern times 2^(n-3) assignments of the other PIs *)
    Alcotest.(check int) "point corruption" (1 lsl (n - 3)) !mismatches
  end

(* ----- Anti-SAT ----- *)

let test_antisat_semantics () =
  let comb = comb_circuit 13 in
  let lk = Antisat.lock ~seed:13 comb ~n:4 in
  Alcotest.(check int) "2n keys" 8 (List.length lk.Locked.key_inputs);
  (match Equiv.check ~fixed_b:lk.Locked.correct_key comb lk.Locked.net with
  | Equiv.Equivalent -> ()
  | Equiv.Different _ -> Alcotest.fail "correct key not transparent");
  (* K_A = K_B (even if not the generated vector) is also correct — the
     Anti-SAT property *)
  let alt =
    List.map
      (fun (name, _) -> (name, true))
      lk.Locked.correct_key
  in
  (match Equiv.check ~fixed_b:alt comb lk.Locked.net with
  | Equiv.Equivalent -> ()
  | Equiv.Different _ -> Alcotest.fail "KA=KB should be transparent")

(* ----- TDK ----- *)

let test_tdk_structure () =
  let net = Benchmarks.tiny () in
  let clock = Sta.clock_for net ~margin:2.0 in
  let tdk = Tdk.lock ~seed:3 net ~clock_ps:clock ~n_sites:2 in
  Alcotest.(check int) "4 keys" 4 (List.length tdk.Tdk.locked.Locked.key_inputs);
  Netlist.validate tdk.Tdk.locked.Locked.net;
  (* with the correct functional+delay key the combinational view is the
     original *)
  let c1, _ = Combinationalize.run net in
  let c2, _ = Combinationalize.run tdk.Tdk.locked.Locked.net in
  match Equiv.check ~fixed_b:tdk.Tdk.locked.Locked.correct_key c1 c2 with
  | Equiv.Equivalent -> ()
  | Equiv.Different _ -> Alcotest.fail "correct TDK key not transparent"

let test_tdk_wrong_delay_key_violates () =
  let net = Benchmarks.tiny () in
  let clock = Sta.clock_for net ~margin:2.0 in
  let tdk = Tdk.lock ~seed:4 net ~clock_ps:clock ~n_sites:2 in
  let lnet = tdk.Tdk.locked.Locked.net in
  (* STA must see the TDB chain (worst case through the MUX) blow the
     endpoint's setup slack — the "violating the setup time constraints"
     of the paper's Fig. 2(c). *)
  let sta = Sta.analyze lnet ~clock_ps:clock in
  List.iter
    (fun site ->
      Alcotest.(check bool) "negative worst-case slack" true
        (Sta.setup_slack sta site.Tdk.ff < 0))
    tdk.Tdk.sites;
  (* Functionally, the wrong delay key makes the endpoint capture stale
     data: its behaviour diverges from the correct key's. *)
  let cycles = 8 in
  let run key =
    let drive pi =
      match List.assoc_opt (Netlist.node lnet pi).Netlist.name key with
      | Some b -> Timing_sim.Const b
      | None -> Stimuli.edge_aligned ~seed:5 lnet ~clock_ps:clock ~cycles pi
    in
    Timing_sim.run ~drive lnet { Timing_sim.clock_ps = clock; cycles }
  in
  let correct = run tdk.Tdk.locked.Locked.correct_key in
  let wrong =
    run
      (List.map
         (fun (n, b) ->
           (n, if String.length n > 3 && n.[3] = 'd' then not b else b))
         tdk.Tdk.locked.Locked.correct_key)
  in
  let stale = ref false in
  Array.iteri
    (fun i _ ->
      Array.iteri
        (fun k v ->
          if not (Logic.equal v wrong.Timing_sim.ff_samples.(i).(k)) then
            stale := true)
        correct.Timing_sim.ff_samples.(i))
    correct.Timing_sim.ff_ids;
  Alcotest.(check bool) "wrong delay key captures stale data" true !stale

(* ----- GK ----- *)

let test_gk_stable_function () =
  (* stable logic: variant (a) is an inverter for both constant keys,
     variant (b) a buffer *)
  let check variant expected_inverts =
    let net = Netlist.create "g" in
    let x = Netlist.add_input net "x" in
    let key = Netlist.add_input net "key" in
    let gk =
      Gk.insert net ~profile:`Custom ~name:"gk" ~x ~key ~variant
        ~d_path_a_ps:500 ~d_path_b_ps:500 ()
    in
    Netlist.add_output net "y" gk.Gk.out;
    List.iter
      (fun (xv, kv) ->
        let values =
          Netlist.eval_comb net (fun id -> if id = x then xv else kv)
        in
        Alcotest.(check bool)
          (Printf.sprintf "x=%b k=%b" xv kv)
          (if expected_inverts then not xv else xv)
          values.(gk.Gk.out))
      [ (false, false); (false, true); (true, false); (true, true) ]
  in
  check Gk.Invert_on_const true;
  check Gk.Buffer_on_const false;
  Alcotest.(check bool) "stable fn tags" true
    (Gk.stable_function Gk.Invert_on_const = `Inverter
    && Gk.stable_function Gk.Buffer_on_const = `Buffer)

let test_gk_glitch_lengths () =
  let net = Netlist.create "g" in
  let x = Netlist.add_input net "x" in
  let key = Netlist.add_input net "key" in
  let gk =
    Gk.insert net ~profile:`Custom ~name:"gk" ~x ~key
      ~variant:Gk.Invert_on_const ~d_path_a_ps:700 ~d_path_b_ps:1200 ()
  in
  Alcotest.(check int) "rise = DB + mux" (1200 + gk.Gk.d_mux_ps)
    (Gk.glitch_on_rise_ps gk);
  Alcotest.(check int) "fall = DA + mux" (700 + gk.Gk.d_mux_ps)
    (Gk.glitch_on_fall_ps gk);
  Alcotest.(check bool) "nodes tracked" true (List.length gk.Gk.nodes >= 5)

let test_gk_variant_b_glitch_inverts () =
  (* variant (b): buffer stably, the glitch carries x' *)
  let net = Netlist.create "g" in
  let x = Netlist.add_input net "x" in
  let key = Netlist.add_input net "key" in
  let gk =
    Gk.insert net ~profile:`Custom ~name:"gk" ~x ~key
      ~variant:Gk.Buffer_on_const ~d_path_a_ps:910 ~d_path_b_ps:910 ()
  in
  Netlist.add_output net "y" gk.Gk.out;
  let drive pi =
    if pi = x then Timing_sim.Const true
    else Timing_sim.Wave (Waveform.make ~initial:Logic.F [ (2000, Logic.T) ])
  in
  let r = Timing_sim.run ~drive net { Timing_sim.clock_ps = 8000; cycles = 1 } in
  let y = Timing_sim.wave_of r net "gk_mux" in
  (* stable 1 (buffer of x=1), glitch to 0 *)
  Alcotest.(check char) "stable" '1' (Logic.to_char (Waveform.value_at y 1000));
  Alcotest.(check char) "glitch low" '0'
    (Logic.to_char (Waveform.value_at y (2000 + gk.Gk.d_mux_ps + 200)));
  Alcotest.(check char) "recovers" '1' (Logic.to_char (Waveform.value_at y 4000))

(* ----- Keygen ----- *)

let test_keygen_selections () =
  let clock = 6000 in
  let run k1v k2v =
    let net = Netlist.create "kg" in
    let k1 = Netlist.add_input net "k1" in
    let k2 = Netlist.add_input net "k2" in
    let kg =
      Keygen.insert net ~profile:`Custom ~name:"kg" ~k1 ~k2 ~adb_da_ps:1000
        ~adb_db_ps:2500 ()
    in
    Netlist.add_output net "key_out" kg.Keygen.key_out;
    let drive pi = Timing_sim.Const (if pi = k1 then k1v else k2v) in
    let r = Timing_sim.run ~drive net { Timing_sim.clock_ps = clock; cycles = 2 } in
    (kg, Timing_sim.wave_of r net "kg_out")
  in
  (* constants *)
  let _, w00 = run false false in
  Alcotest.(check int) "const0 no transitions" 0
    (List.length (Waveform.transitions w00));
  let _, w11 = run true true in
  Alcotest.(check char) "const1" '1' (Logic.to_char (Waveform.value_at w11 100));
  (* delayed branches: first transition at clk2q + chain + 2 mux levels,
     within cycle 0 (edge 0 launches the toggle) *)
  let kg, w01 = run false true in
  (match Waveform.transitions w01 with
  | (t, _) :: _ ->
    Alcotest.(check int) "branch A trigger" (Keygen.trigger_time_a_ps kg) t
  | [] -> Alcotest.fail "no transition on branch A");
  let kg2, w10 = run true false in
  (match Waveform.transitions w10 with
  | (t, _) :: _ ->
    Alcotest.(check int) "branch B trigger" (Keygen.trigger_time_b_ps kg2) t
  | [] -> Alcotest.fail "no transition on branch B");
  (* one transition per cycle *)
  Alcotest.(check int) "per-cycle transitions" 3
    (List.length (Waveform.transitions w01))

let test_keygen_helpers () =
  Alcotest.(check bool) "selection_of" true
    (Keygen.selection_of ~k1:false ~k2:true = Keygen.Sel_delay_a);
  Alcotest.(check bool) "key_for inverse" true
    (Keygen.key_for Keygen.Sel_delay_b = (true, false));
  (match Keygen.chain_target_for ~t_trigger_ps:100 with
  | None -> ()
  | Some _ -> Alcotest.fail "trigger below clk2q should be unreachable");
  match Keygen.chain_target_for ~t_trigger_ps:2000 with
  | Some t ->
    Alcotest.(check int) "target arithmetic"
      (2000 - Cell_lib.dff_clk2q_ps - (2 * (Cell_lib.bind Cell.Mux 3).Cell.delay_ps))
      t
  | None -> Alcotest.fail "reachable trigger"

(* ----- Ff_select ----- *)

let test_ff_select () =
  let net = Benchmarks.tiny () in
  let ffs = Netlist.ffs net in
  let groups = Ff_select.groups net ~among:ffs in
  let total = List.fold_left (fun a g -> a + List.length g) 0 groups in
  Alcotest.(check int) "partition" (List.length ffs) total;
  Alcotest.(check int) "selected = largest" (List.length (List.hd groups))
    (Ff_select.selected_count net ~among:ffs);
  let picked = Ff_select.pick net ~among:ffs ~n:3 ~seed:1 in
  Alcotest.(check int) "picked 3" 3 (List.length picked);
  Alcotest.(check int) "distinct" 3 (List.length (List.sort_uniq compare picked));
  Alcotest.check_raises "too many"
    (Invalid_argument "Ff_select.pick: not enough flip-flops") (fun () ->
      ignore (Ff_select.pick net ~among:ffs ~n:99 ~seed:1))

(* ----- Insertion ----- *)

let test_insertion_sites_satisfy_eqs () =
  let spec = Option.get (Benchmarks.find_spec "s5378") in
  let net = Benchmarks.load spec in
  let clock = Sta.clock_for net ~margin:spec.Benchmarks.clk_margin in
  let sites = Insertion.available_sites net ~clock_ps:clock ~l_glitch_ps:1000 in
  let d_mux = (Cell_lib.bind Cell.Mux 3).Cell.delay_ps in
  Alcotest.(check bool) "non-empty" true (sites <> []);
  List.iter
    (fun s ->
      Alcotest.(check bool) "eq3" true
        (Gk_timing.feasible_on_level s.Insertion.si_site ~l_glitch:1000 ~d_mux);
      let lo, hi = s.Insertion.si_window in
      Alcotest.(check bool) "window sane" true (lo < hi))
    sites

let test_insertion_lock_metadata () =
  let net = Benchmarks.tiny () in
  let clock = Sta.clock_for net ~margin:4.5 in
  let d = Insertion.lock ~seed:3 net ~clock_ps:clock ~n_gks:3 in
  Alcotest.(check int) "placements" 3 (List.length d.Insertion.placements);
  Alcotest.(check int) "key inputs 2/gk" 6 (List.length d.Insertion.key_inputs);
  List.iter
    (fun p ->
      (* correct key selects a delayed branch, never a constant *)
      let b1, b2 = p.Insertion.p_correct in
      Alcotest.(check bool) "transitional key" true (b1 <> b2);
      (* the intended glitch covers the capture window *)
      let start, stop = p.Insertion.p_glitch in
      Alcotest.(check bool) "covers window" true
        (start <= clock - Cell_lib.dff_setup_ps
        && stop >= clock + Cell_lib.dff_hold_ps);
      Alcotest.(check bool) "intended lookup" true
        (Insertion.intended_glitches d p.Insertion.p_ff = Some p.Insertion.p_glitch))
    d.Insertion.placements;
  Alcotest.(check bool) "missing ff" true (Insertion.intended_glitches d 0 = None
    || List.exists (fun p -> p.Insertion.p_ff = 0) d.Insertion.placements)

let test_insertion_not_enough_sites () =
  let net = Benchmarks.s27 () in
  Alcotest.(check bool) "raises" true
    (match Insertion.lock net ~clock_ps:700 ~n_gks:2 with
    | _ -> false
    | exception Invalid_argument _ -> true)

let insertion_correct_key_timing_law seed =
  (* The flagship invariant: with the correct key the locked design's
     timing-true behaviour equals the original's. *)
  let net =
    Generator.generate
      {
        Generator.gen_name = "ik";
        seed = seed + 1000;
        n_pi = 5;
        n_po = 4;
        n_ff = 6;
        n_gates = 30;
        depth = 6;
        ff_depth_bias = 0.2;
      }
  in
  let clock_ps = max (Sta.clock_for net ~margin:1.2) 2600 in
  match Insertion.lock ~seed net ~clock_ps ~n_gks:2 with
  | exception Invalid_argument _ -> true (* no sites in this toy circuit *)
  | d ->
    let cycles = 10 in
    let cfg = { Timing_sim.clock_ps; cycles } in
    let stim n = Stimuli.edge_aligned ~seed:(seed + 7) n ~clock_ps ~cycles in
    (* Both sides hold reset through cycle 0; the locked design's KEYGEN
       toggles run free, so every data capture is glitch-covered. *)
    let base =
      Timing_sim.run ~drive:(stim net) ~captures_from:(fun _ -> 1) net cfg
    in
    let locked =
      Timing_sim.run
        ~drive:
          (Insertion.timing_drive ~other:(stim d.Insertion.lnet) d
             d.Insertion.correct_key)
        ~captures_from:(Insertion.capture_policy d) d.Insertion.lnet cfg
    in
    let mism, _ = Stimuli.po_agreement ~skip:0 base locked in
    mism = 0 && locked.Timing_sim.violations = []

let test_strip_keygens () =
  let net = Benchmarks.tiny () in
  let clock = Sta.clock_for net ~margin:4.5 in
  let d = Insertion.lock ~seed:3 net ~clock_ps:clock ~n_gks:2 in
  let stripped, keys = Insertion.strip_keygens d in
  Alcotest.(check int) "one key per gk" 2 (List.length keys);
  (* keygen toggle FFs removed: FF count back to the original *)
  Alcotest.(check int) "ff count restored"
    (List.length (Netlist.ffs net))
    (List.length (Netlist.ffs stripped));
  (* the GK structure remains: stable function = inverter on the D path *)
  Alcotest.(check bool) "gkkey inputs exist" true
    (List.for_all (fun k -> Netlist.find stripped k <> None) keys)

let test_insertion_false_violations () =
  (* the locked design STA shows only false violations (explained by the
     intended glitches) *)
  let net = Benchmarks.tiny () in
  let clock = Sta.clock_for net ~margin:4.5 in
  let d = Insertion.lock ~seed:3 net ~clock_ps:clock ~n_gks:2 in
  let sta = Sta.analyze d.Insertion.lnet ~clock_ps:clock in
  let entries = Timing_report.discriminate sta ~intended:(Insertion.intended_glitches d) in
  Alcotest.(check int) "no true violations" 0
    (List.length (Timing_report.true_violations entries))

(* ----- Hybrid ----- *)

let test_hybrid () =
  let spec = Option.get (Benchmarks.find_spec "s5378") in
  let net = Benchmarks.load spec in
  let clock = Sta.clock_for net ~margin:spec.Benchmarks.clk_margin in
  let h = Hybrid.lock ~seed:4 net ~clock_ps:clock ~n_gks:8 ~n_xors:16 in
  Alcotest.(check int) "32 key inputs" 32 (List.length h.Hybrid.all_key_inputs);
  Alcotest.(check int) "16 xor keys" 16 (List.length h.Hybrid.xor_key_inputs);
  let ch, _ = Hybrid.overhead h in
  let d16 = Insertion.lock ~seed:4 net ~clock_ps:clock ~n_gks:16 in
  let c16, _ = Insertion.overhead d16 in
  Alcotest.(check bool) "hybrid cheaper than 16 GKs" true (ch < c16)

(* ----- Withhold ----- *)

let test_withhold_truth () =
  let net = Netlist.create "w" in
  let a = Netlist.add_input net "a" in
  let b = Netlist.add_input net "b" in
  let c = Netlist.add_input net "c" in
  let g1 = Netlist.add_gate net Cell.And [| a; b |] in
  let g2 = Netlist.add_gate net Cell.Xor [| g1; c |] in
  Netlist.add_output net "y" g2;
  let reference = Netlist.copy net in
  let absorbed = Withhold.absorb net ~root:g2 ~interior:[ g1 ] in
  Alcotest.(check int) "3 leaves" 3 (List.length absorbed.Withhold.lut_inputs);
  Netlist.validate net;
  (match Equiv.check reference net with
  | Equiv.Equivalent -> ()
  | Equiv.Different _ -> Alcotest.fail "absorption changed the function");
  Alcotest.(check bool) "hidden" true
    (List.mem g1 absorbed.Withhold.hidden_nodes)

let test_withhold_guards () =
  let net = Netlist.create "w" in
  let a = Netlist.add_input net "a" in
  let g1 = Netlist.add_gate net Cell.Not [| a |] in
  let g2 = Netlist.add_gate net Cell.Not [| g1 |] in
  let g3 = Netlist.add_gate net Cell.And [| g1; g2 |] in
  Netlist.add_output net "y" g3;
  (* g1 escapes through g3: absorbing root g2 with interior g1 must fail *)
  Alcotest.(check bool) "escape rejected" true
    (match Withhold.absorb net ~root:g2 ~interior:[ g1 ] with
    | _ -> false
    | exception Invalid_argument _ -> true);
  Alcotest.(check bool) "candidate count" true
    (Withhold.candidate_functions 3 = 256.0)

let suites =
  [
    ("locking.key", [ tc "ops" `Quick test_key_ops ]);
    ("locking.locked", [ tc "splice" `Quick test_splice ]);
    ( "locking.xor",
      [
        tc "structure" `Quick test_xor_structure;
        tc "wrong key corrupts" `Quick test_xor_wrong_key_corrupts;
        qcheck ~count:20 "correct key transparent" seed_arb xor_correct_key_law;
      ] );
    ( "locking.mux",
      [
        tc "acyclic" `Quick test_mux_acyclic;
        tc "flipped key bit observable" `Quick test_mux_flip_observable;
        qcheck ~count:20 "correct key transparent" seed_arb mux_correct_key_law;
      ] );
    ( "locking.sarlock",
      [
        tc "semantics" `Quick test_sarlock_semantics;
        tc "point function" `Slow test_sarlock_point_function;
      ] );
    ("locking.antisat", [ tc "semantics" `Quick test_antisat_semantics ]);
    ( "locking.tdk",
      [
        tc "structure" `Quick test_tdk_structure;
        tc "wrong delay key violates" `Quick test_tdk_wrong_delay_key_violates;
      ] );
    ( "locking.gk",
      [
        tc "stable function" `Quick test_gk_stable_function;
        tc "glitch lengths" `Quick test_gk_glitch_lengths;
        tc "variant (b) glitch inverts" `Quick test_gk_variant_b_glitch_inverts;
      ] );
    ( "locking.keygen",
      [
        tc "four selections" `Quick test_keygen_selections;
        tc "helpers" `Quick test_keygen_helpers;
      ] );
    ("locking.ff_select", [ tc "groups/pick" `Quick test_ff_select ]);
    ( "locking.insertion",
      [
        tc "sites satisfy the equations" `Quick test_insertion_sites_satisfy_eqs;
        tc "lock metadata" `Quick test_insertion_lock_metadata;
        tc "not enough sites" `Quick test_insertion_not_enough_sites;
        tc "strip keygens" `Quick test_strip_keygens;
        tc "only false violations" `Quick test_insertion_false_violations;
        qcheck ~count:12 "correct key is timing-transparent" seed_arb
          insertion_correct_key_timing_law;
      ] );
    ("locking.hybrid", [ tc "composition" `Slow test_hybrid ]);
    ( "locking.withhold",
      [
        tc "truth preserved" `Quick test_withhold_truth;
        tc "guards" `Quick test_withhold_guards;
      ] );
  ]
