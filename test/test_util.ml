(* Unit and property tests for the gklock_util containers. *)

let tc = Alcotest.test_case

let qcheck ?(count = 200) name arb law = Qc.qcheck ~count name arb law

(* ----- Vec ----- *)

let test_vec_basic () =
  let v = Vec.create () in
  Alcotest.(check int) "empty length" 0 (Vec.length v);
  Vec.push v 10;
  Vec.push v 20;
  Vec.push v 30;
  Alcotest.(check int) "length" 3 (Vec.length v);
  Alcotest.(check int) "get 0" 10 (Vec.get v 0);
  Alcotest.(check int) "get 2" 30 (Vec.get v 2);
  Vec.set v 1 99;
  Alcotest.(check int) "set" 99 (Vec.get v 1);
  Alcotest.(check int) "top" 30 (Vec.top v);
  Alcotest.(check int) "pop" 30 (Vec.pop v);
  Alcotest.(check int) "length after pop" 2 (Vec.length v)

let test_vec_bounds () =
  let v = Vec.of_list [ 1; 2 ] in
  Alcotest.check_raises "get oob" (Invalid_argument "Vec: index 5 out of bounds (len 2)")
    (fun () -> ignore (Vec.get v 5));
  Alcotest.check_raises "pop empty" (Invalid_argument "Vec.pop: empty")
    (fun () ->
      let e = Vec.create () in
      ignore (Vec.pop e))

let test_vec_shrink_clear () =
  let v = Vec.of_list [ 1; 2; 3; 4; 5 ] in
  Vec.shrink v 2;
  Alcotest.(check (list int)) "shrunk" [ 1; 2 ] (Vec.to_list v);
  Vec.clear v;
  Alcotest.(check int) "cleared" 0 (Vec.length v)

let test_vec_make () =
  let v = Vec.make 4 'x' in
  Alcotest.(check int) "make length" 4 (Vec.length v);
  Alcotest.(check char) "make fill" 'x' (Vec.get v 3)

let test_vec_iter_fold () =
  let v = Vec.of_list [ 1; 2; 3 ] in
  let sum = Vec.fold ( + ) 0 v in
  Alcotest.(check int) "fold" 6 sum;
  let acc = ref [] in
  Vec.iteri (fun i x -> acc := (i, x) :: !acc) v;
  Alcotest.(check (list (pair int int))) "iteri" [ (2, 3); (1, 2); (0, 1) ] !acc;
  Alcotest.(check bool) "exists" true (Vec.exists (fun x -> x = 2) v);
  Alcotest.(check bool) "exists not" false (Vec.exists (fun x -> x = 9) v)

(* Growth across many doublings, and indexing after shrink: stale cells
   beyond the logical length must never leak back. *)
let test_vec_growth () =
  let v = Vec.create () in
  for i = 0 to 999 do
    Vec.push v i;
    if Vec.top v <> i then Alcotest.failf "top after push %d" i
  done;
  Alcotest.(check int) "length" 1000 (Vec.length v);
  for i = 0 to 999 do
    if Vec.get v i <> i then Alcotest.failf "get %d" i
  done;
  Vec.set v 512 (-1);
  Alcotest.(check int) "set/get" (-1) (Vec.get v 512);
  Alcotest.(check int) "neighbour untouched" 511 (Vec.get v 511);
  Vec.shrink v 100;
  Alcotest.(check int) "shrunk length" 100 (Vec.length v);
  Alcotest.(check int) "last survivor" 99 (Vec.get v 99);
  Alcotest.check_raises "index 100 out of bounds after shrink"
    (Invalid_argument "Vec: index 100 out of bounds (len 100)") (fun () ->
      ignore (Vec.get v 100));
  Vec.push v 7;
  Alcotest.(check int) "push after shrink" 7 (Vec.get v 100);
  Vec.clear v;
  Vec.push v 3;
  Alcotest.(check int) "push after clear" 3 (Vec.get v 0);
  Alcotest.(check int) "length after clear+push" 1 (Vec.length v)

(* A vector behaves like the list of pushed elements. *)
let vec_model_law (xs : int list) =
  let v = Vec.create () in
  List.iter (Vec.push v) xs;
  Vec.to_list v = xs
  && Vec.length v = List.length xs
  && Array.to_list (Vec.to_array v) = xs

let vec_push_pop_law (xs : int list) =
  let v = Vec.of_list xs in
  let popped = List.init (List.length xs) (fun _ -> Vec.pop v) in
  popped = List.rev xs && Vec.length v = 0

(* ----- Ascii_table ----- *)

let test_table_render () =
  let t =
    Ascii_table.create ~title:"T"
      ~columns:[ ("name", Ascii_table.Left); ("n", Ascii_table.Right) ]
  in
  Ascii_table.add_row t [ "a"; "1" ];
  Ascii_table.add_row t [ "bb"; "22" ];
  Ascii_table.set_footer t [ "avg"; "11" ];
  let s = Ascii_table.render t in
  Alcotest.(check bool) "has title" true (String.length s > 0 && s.[0] = 'T');
  let count_sub sub =
    let n = ref 0 in
    let sl = String.length sub in
    for i = 0 to String.length s - sl do
      if String.sub s i sl = sub then incr n
    done;
    !n
  in
  Alcotest.(check int) "four rules" 4 (count_sub "+------+");
  Alcotest.(check bool) "has footer" true (count_sub "avg" = 1)

let test_table_arity () =
  let t = Ascii_table.create ~title:"" ~columns:[ ("a", Ascii_table.Left) ] in
  Alcotest.check_raises "bad row"
    (Invalid_argument "Ascii_table: row has 2 cells, table has 1 columns")
    (fun () -> Ascii_table.add_row t [ "x"; "y" ])

let suites =
  [
    ( "util.vec",
      [
        tc "basic" `Quick test_vec_basic;
        tc "bounds" `Quick test_vec_bounds;
        tc "shrink/clear" `Quick test_vec_shrink_clear;
        tc "make" `Quick test_vec_make;
        tc "growth + stale cells" `Quick test_vec_growth;
        tc "iter/fold" `Quick test_vec_iter_fold;
        qcheck "vec models list" QCheck.(list int) vec_model_law;
        qcheck "push/pop is a stack" QCheck.(list int) vec_push_pop_law;
      ] );
    ( "util.ascii_table",
      [ tc "render" `Quick test_table_render; tc "arity" `Quick test_table_arity ] );
  ]
