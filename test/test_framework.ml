(* The unified attack framework: budgets, instrumented oracles and the
   attack registry. *)

let comb_circuit seed =
  let net =
    Generator.generate
      {
        Generator.gen_name = Printf.sprintf "fw%d" seed;
        seed;
        n_pi = 8;
        n_po = 5;
        n_ff = 8;
        n_gates = 60;
        depth = 8;
        ff_depth_bias = 0.2;
      }
  in
  fst (Combinationalize.run net)

(* ----- Budget ----- *)

let test_budget_iterations () =
  let b = Budget.create ~max_iterations:3 () in
  Budget.tick b;
  Budget.tick b;
  Budget.tick b;
  Alcotest.(check int) "three ticks" 3 (Budget.iterations b);
  Alcotest.check_raises "fourth tick trips" (Budget.Exhausted Budget.Iterations)
    (fun () -> Budget.tick b);
  (* the raise happens before the increment: the counter still reads the
     number of completed iterations *)
  Alcotest.(check int) "count unchanged" 3 (Budget.iterations b);
  Alcotest.(check bool) "tripped recorded" true
    (Budget.tripped b = Some Budget.Iterations)

let test_budget_queries () =
  let b = Budget.create ~max_queries:10 () in
  Budget.note_queries b 8;
  Alcotest.(check int) "charged" 8 (Budget.queries b);
  (try
     Budget.note_queries b 5;
     Alcotest.fail "query cap should trip"
   with Budget.Exhausted Budget.Queries -> ());
  Alcotest.(check bool) "tripped recorded" true
    (Budget.tripped b = Some Budget.Queries)

let test_budget_deadline () =
  let b = Budget.create ~deadline_s:0.0 () in
  Alcotest.check_raises "expired deadline trips"
    (Budget.Exhausted Budget.Deadline) (fun () -> Budget.check b);
  Alcotest.(check bool) "unlimited never trips" true
    (let u = Budget.unlimited () in
     Budget.tick u;
     Budget.check u;
     Budget.tripped u = None);
  Alcotest.check_raises "negative cap rejected"
    (Invalid_argument "Budget.create: max_iterations < 0") (fun () ->
      ignore (Budget.create ~max_iterations:(-1) ()))

(* ----- Oracle ----- *)

let test_oracle_memo_and_counts () =
  let comb = comb_circuit 60 in
  let o = Oracle.of_netlist comb in
  let names = Oracle.input_names o in
  let dip = List.map (fun n -> (n, true)) names in
  let r1 = Oracle.query o dip in
  let r2 = Oracle.query o (List.rev dip) in
  Alcotest.(check bool) "same response" true (r1 = r2);
  Alcotest.(check int) "one real eval" 1 (Oracle.queries o);
  Alcotest.(check int) "one memo hit" 1 (Oracle.memo_hits o);
  (* a batch with duplicates charges only the distinct misses *)
  let dip2 = List.map (fun n -> (n, false)) names in
  let rs = Oracle.query_batch o [ dip; dip2; dip2; dip ] in
  Alcotest.(check int) "batch items" 4 (List.length rs);
  Alcotest.(check int) "one new eval" 2 (Oracle.queries o);
  Alcotest.(check bool) "batch agrees with scalar" true
    (List.nth rs 0 = r1 && List.nth rs 1 = List.nth rs 2)

let test_oracle_budget_charging () =
  let comb = comb_circuit 61 in
  let budget = Budget.create ~max_queries:2 () in
  let o = Oracle.of_netlist ~budget comb in
  let names = Oracle.input_names o in
  let dip b = List.map (fun n -> (n, b)) names in
  ignore (Oracle.query o (dip true));
  ignore (Oracle.query o (dip true));
  (* memo hit: free *)
  Alcotest.(check int) "memo hits are not charged" 1 (Budget.queries budget);
  Alcotest.check_raises "cap trips on a fresh query"
    (Budget.Exhausted Budget.Queries) (fun () ->
      ignore (Oracle.query o (dip false));
      ignore
        (Oracle.query_batch o
           [
             List.mapi (fun i n -> (n, i mod 2 = 0)) names;
             List.mapi (fun i n -> (n, i mod 2 = 1)) names;
           ]))

let test_oracle_batch_equals_scalar () =
  let comb = comb_circuit 62 in
  let batched = Oracle.of_netlist comb in
  let scalar = Oracle.of_netlist ~memo:false comb in
  let names = Oracle.input_names batched in
  let rng = Random.State.make [| 62; 0xba7c |] in
  (* more dips than one 63-lane word, to cross a chunk boundary *)
  let dips =
    List.init 150 (fun _ ->
        List.map (fun n -> (n, Random.State.bool rng)) names)
  in
  let rs = Oracle.query_batch batched dips in
  List.iter2
    (fun dip r ->
      if Oracle.query scalar dip <> r then
        Alcotest.fail "batched response differs from scalar evaluation")
    dips rs

let test_oracle_memo_cap () =
  let comb = comb_circuit 64 in
  let o = Oracle.of_netlist ~memo_cap:3 comb in
  let names = Oracle.input_names o in
  let dip i = List.mapi (fun j n -> (n, (i lsr j) land 1 = 1)) names in
  for i = 0 to 4 do
    ignore (Oracle.query o (dip i))
  done;
  Alcotest.(check int) "five real evals" 5 (Oracle.queries o);
  Alcotest.(check int) "two FIFO evictions" 2 (Oracle.memo_evictions o);
  (* the most recent entries are still resident *)
  ignore (Oracle.query o (dip 4));
  Alcotest.(check int) "recent entry hits" 1 (Oracle.memo_hits o);
  Alcotest.(check int) "a hit does not evict" 2 (Oracle.memo_evictions o);
  (* the oldest entry was evicted: re-querying re-evaluates and recounts *)
  ignore (Oracle.query o (dip 0));
  Alcotest.(check int) "evicted entry re-evaluated" 6 (Oracle.queries o);
  Alcotest.(check int) "re-insertion evicts the next oldest" 3
    (Oracle.memo_evictions o);
  Alcotest.check_raises "cap must be positive"
    (Invalid_argument
       "Oracle: memo_cap must be >= 1 (use ~memo:false to disable)") (fun () ->
      ignore (Oracle.of_netlist ~memo_cap:0 comb))

let test_oracle_fn_key_memo () =
  let calls = ref 0 in
  let fn q =
    incr calls;
    [ ("y", List.for_all snd q) ]
  in
  let o = Oracle.of_fn fn in
  let q1 = [ ("a", true); ("b", false); ("c", true) ] in
  let q2 = [ ("c", true); ("a", true); ("b", false) ] in
  let r1 = Oracle.query o q1 in
  let r2 = Oracle.query o q2 in
  Alcotest.(check bool) "same response" true (r1 = r2);
  Alcotest.(check int) "permutation is a memo hit" 1 !calls;
  Alcotest.(check int) "hit counted" 1 (Oracle.memo_hits o);
  ignore (Oracle.query o [ ("a", false); ("b", false); ("c", true) ]);
  Alcotest.(check int) "distinct assignment evaluated" 2 !calls;
  (* same bit pattern under a different name set must not share an entry *)
  ignore (Oracle.query o [ ("x", false); ("y", false); ("z", true) ]);
  Alcotest.(check int) "distinct name set evaluated" 3 !calls;
  Alcotest.(check int) "real evals counted" 3 (Oracle.queries o)

(* forced shard counts must not change results, counters, or ordering *)
let test_oracle_sharded_batch () =
  let comb = comb_circuit 65 in
  let scalar = Oracle.of_netlist ~memo:false comb in
  let names = Oracle.input_names scalar in
  let rng = Random.State.make [| 65; 0x5ad |] in
  let dips =
    List.init 300 (fun _ ->
        List.map (fun n -> (n, Random.State.bool rng)) names)
  in
  let expect = List.map (Oracle.query scalar) dips in
  List.iter
    (fun shards ->
      let o = Oracle.of_netlist ~block_words:2 ~shards comb in
      let rs = Oracle.query_batch o dips in
      Alcotest.(check bool)
        (Printf.sprintf "%d shards = scalar" shards)
        true (rs = expect))
    [ 1; 2; 4 ]

(* ----- registry ----- *)

let test_registry_names () =
  let names = Attack.names () in
  List.iter
    (fun n ->
      Alcotest.(check bool) (n ^ " registered") true (List.mem n names))
    [
      "none"; "sat"; "appsat"; "brute"; "sensitization"; "removal";
      "enhanced-removal"; "tcf2"; "scan";
    ];
  Alcotest.(check bool) "find_exn rejects unknowns" true
    (match Attack.find_exn "not-an-attack" with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_registry_parity_sat_xor () =
  let comb = comb_circuit 63 in
  let lk = Xor_lock.lock ~seed:63 comb ~n_keys:6 in
  let legacy =
    Sat_attack.run ~locked:lk.Locked.net ~key_inputs:lk.Locked.key_inputs
      ~oracle:(Sat_attack.oracle_of_netlist comb)
      ()
  in
  let o =
    Attack.run ~name:"sat" ~locked:lk.Locked.net
      ~key_inputs:lk.Locked.key_inputs
      ~oracle:(Oracle.of_netlist comb)
      ()
  in
  (match (legacy.Sat_attack.status, o.Attack.verdict) with
  | Sat_attack.Key_recovered _, Attack.Key_recovered k ->
    Alcotest.(check bool) "registry key functionally correct" true
      (Equiv.check ~fixed_b:k comb lk.Locked.net = Equiv.Equivalent)
  | _ -> Alcotest.fail "both paths should recover a key");
  Alcotest.(check int) "same DIP count" legacy.Sat_attack.iterations
    o.Attack.iterations;
  Alcotest.(check bool) "telemetry: queries reported" true
    (o.Attack.queries >= o.Attack.iterations && o.Attack.queries > 0);
  Alcotest.(check bool) "telemetry: conflicts carried" true
    (o.Attack.conflicts = legacy.Sat_attack.conflicts);
  Alcotest.(check bool) "telemetry: elapsed sane" true
    (o.Attack.elapsed_s >= 0.0)

let test_registry_parity_gk_no_dip () =
  let net = Benchmarks.tiny () in
  let clock = Sta.clock_for net ~margin:4.5 in
  let d = Insertion.lock ~seed:3 net ~clock_ps:clock ~n_gks:2 in
  let stripped, keys = Insertion.strip_keygens d in
  let locked_comb, _ = Combinationalize.run stripped in
  let oracle_comb, _ = Combinationalize.run net in
  let o =
    Attack.run ~name:"sat" ~locked:locked_comb ~key_inputs:keys
      ~oracle:(Oracle.of_netlist oracle_comb)
      ()
  in
  match o.Attack.verdict with
  | Attack.No_dip { mismatches; _ } ->
    Alcotest.(check int) "zero DIP iterations" 0 o.Attack.iterations;
    Alcotest.(check bool) "extracted key refuted" true (mismatches > 0);
    Alcotest.(check bool) "broken = false" false (Attack.broken o.Attack.verdict)
  | v -> Alcotest.fail ("expected no_dip, got " ^ Attack.verdict_name v)

let test_registry_deadline () =
  (* SARLock needs ~2^12 DIPs; an already-expired deadline must surface
     as a structured verdict instead of hanging or raising *)
  let comb = comb_circuit 64 in
  let lk = Sarlock.lock ~seed:64 comb ~n_keys:12 in
  let o =
    Attack.run
      ~budget:(Budget.create ~deadline_s:0.05 ())
      ~name:"sat" ~locked:lk.Locked.net ~key_inputs:lk.Locked.key_inputs
      ~oracle:(Oracle.of_netlist comb)
      ()
  in
  match o.Attack.verdict with
  | Attack.Out_of_budget Budget.Deadline -> ()
  | v -> Alcotest.fail ("expected out_of_budget_deadline, got "
                        ^ Attack.verdict_name v)

let test_registry_query_cap () =
  let comb = comb_circuit 65 in
  let lk = Xor_lock.lock ~seed:65 comb ~n_keys:10 in
  let budget = Budget.create ~max_queries:3 () in
  let o =
    Attack.run ~budget ~name:"brute" ~locked:lk.Locked.net
      ~key_inputs:lk.Locked.key_inputs
      ~oracle:(Oracle.of_netlist ~budget comb)
      ()
  in
  match o.Attack.verdict with
  | Attack.Out_of_budget Budget.Queries ->
    Alcotest.(check bool) "queries telemetry at/over cap" true
      (o.Attack.queries >= 3)
  | v -> Alcotest.fail ("expected out_of_budget_queries, got "
                        ^ Attack.verdict_name v)

let test_registry_none_baseline () =
  let comb = comb_circuit 66 in
  let o =
    Attack.run ~name:"none" ~locked:comb ~key_inputs:[]
      ~oracle:(Oracle.of_netlist comb)
      ()
  in
  Alcotest.(check bool) "skipped" true (o.Attack.verdict = Attack.Skipped);
  Alcotest.(check int) "no queries" 0 o.Attack.queries;
  Alcotest.(check int) "no iterations" 0 o.Attack.iterations

let test_markdown_table () =
  let t = Attack.markdown_table () in
  List.iter
    (fun n ->
      Alcotest.(check bool) (n ^ " in table") true
        (let re = "| `" ^ n ^ "`" in
         let rec find i =
           i + String.length re <= String.length t
           && (String.sub t i (String.length re) = re || find (i + 1))
         in
         find 0))
    (Attack.names ())

let suites =
  [
    ( "framework.budget",
      [
        Alcotest.test_case "iteration cap" `Quick test_budget_iterations;
        Alcotest.test_case "query cap" `Quick test_budget_queries;
        Alcotest.test_case "deadline + validation" `Quick test_budget_deadline;
      ] );
    ( "framework.oracle",
      [
        Alcotest.test_case "memo + counts" `Quick test_oracle_memo_and_counts;
        Alcotest.test_case "budget charging" `Quick test_oracle_budget_charging;
        Alcotest.test_case "memo cap + evictions" `Quick test_oracle_memo_cap;
        Alcotest.test_case "fn-backend canonical keys" `Quick
          test_oracle_fn_key_memo;
        Alcotest.test_case "sharded batch = scalar" `Quick
          test_oracle_sharded_batch;
        Alcotest.test_case "batch = scalar" `Quick
          test_oracle_batch_equals_scalar;
      ] );
    ( "framework.registry",
      [
        Alcotest.test_case "names" `Quick test_registry_names;
        Alcotest.test_case "parity: sat vs legacy" `Quick
          test_registry_parity_sat_xor;
        Alcotest.test_case "parity: GK no-DIP" `Quick
          test_registry_parity_gk_no_dip;
        Alcotest.test_case "deadline verdict" `Quick test_registry_deadline;
        Alcotest.test_case "query-cap verdict" `Quick test_registry_query_cap;
        Alcotest.test_case "none baseline" `Quick test_registry_none_baseline;
        Alcotest.test_case "markdown table" `Quick test_markdown_table;
      ] );
  ]
