(* Tests for three-valued logic, waveforms, the event queue and both
   simulators — including the glitch semantics everything rests on. *)

let tc = Alcotest.test_case

let qcheck ?(count = 100) name arb law = Qc.qcheck ~count name arb law

let logic_arb =
  QCheck.make
    ~print:(fun v -> String.make 1 (Logic.to_char v))
    QCheck.Gen.(oneofl [ Logic.F; Logic.T; Logic.X ])

(* ----- Logic ----- *)

let test_logic_tables () =
  let open Logic in
  Alcotest.(check char) "not x" 'x' (to_char (lnot X));
  Alcotest.(check char) "0 and x" '0' (to_char (land_ F X));
  Alcotest.(check char) "1 and x" 'x' (to_char (land_ T X));
  Alcotest.(check char) "1 or x" '1' (to_char (lor_ T X));
  Alcotest.(check char) "0 or x" 'x' (to_char (lor_ F X));
  Alcotest.(check char) "x xor 1" 'x' (to_char (lxor_ X T));
  Alcotest.(check char) "mux x same" '1' (to_char (mux X T T));
  Alcotest.(check char) "mux x diff" 'x' (to_char (mux X T F))

let de_morgan_law (a, b) =
  Logic.equal (Logic.lnot (Logic.land_ a b)) (Logic.lor_ (Logic.lnot a) (Logic.lnot b))

let logic_matches_bool_law (a, b) =
  (* On determinate values three-valued ops agree with Cell.eval. *)
  let module L = Logic in
  let ba = Option.get (L.to_bool a) and bb = Option.get (L.to_bool b) in
  List.for_all
    (fun fn ->
      L.equal
        (L.eval_fn fn [| a; b |])
        (L.of_bool (Cell.eval fn [| ba; bb |])))
    [ Cell.And; Cell.Or; Cell.Nand; Cell.Nor; Cell.Xor; Cell.Xnor ]

let test_logic_eval_lut () =
  let xor_tt = [| false; true; true; false |] in
  Alcotest.(check char) "lut 10" '1'
    (Logic.to_char (Logic.eval_lut xor_tt [| Logic.T; Logic.F |]));
  (* one input unknown, rows disagree -> X *)
  Alcotest.(check char) "lut x" 'x'
    (Logic.to_char (Logic.eval_lut xor_tt [| Logic.X; Logic.F |]));
  (* rows agree despite unknown -> determinate *)
  let const_tt = [| true; true; true; true |] in
  Alcotest.(check char) "lut const" '1'
    (Logic.to_char (Logic.eval_lut const_tt [| Logic.X; Logic.X |]))

(* ----- Event_queue ----- *)

let test_event_queue_order () =
  let q = Event_queue.create () in
  Event_queue.add q ~time:5 "e5";
  Event_queue.add q ~time:1 "e1";
  Event_queue.add q ~time:3 "e3a";
  Event_queue.add q ~time:3 "e3b";
  Alcotest.(check (option int)) "peek" (Some 1) (Event_queue.peek_time q);
  let order = List.init 4 (fun _ -> snd (Option.get (Event_queue.pop_min q))) in
  Alcotest.(check (list string)) "order + ties FIFO" [ "e1"; "e3a"; "e3b"; "e5" ] order;
  Alcotest.(check bool) "empty" true (Event_queue.is_empty q)

let event_queue_sorted_law times =
  let q = Event_queue.create () in
  List.iter (fun t -> Event_queue.add q ~time:t ()) times;
  let rec drain acc =
    match Event_queue.pop_min q with
    | None -> List.rev acc
    | Some (t, ()) -> drain (t :: acc)
  in
  drain [] = List.sort compare times

(* ----- Waveform ----- *)

let test_waveform_normalize () =
  let w =
    Waveform.make ~initial:Logic.F
      [ (10, Logic.T); (5, Logic.F); (20, Logic.T); (30, Logic.F) ]
  in
  (* (5,F) is a non-change and (20,T) repeats the current value *)
  Alcotest.(check int) "transition count" 2
    (List.length (Waveform.transitions w));
  Alcotest.(check char) "before" '0' (Logic.to_char (Waveform.value_at w 9));
  Alcotest.(check char) "at" '1' (Logic.to_char (Waveform.value_at w 10));
  Alcotest.(check char) "after fall" '0' (Logic.to_char (Waveform.value_at w 31))

let waveform_value_consistent_law pairs =
  (* value_at after a make sees the last change at or before t. *)
  let trans = List.map (fun (t, b) -> (abs t mod 1000, Logic.of_bool b)) pairs in
  let w = Waveform.make ~initial:Logic.F trans in
  (* transitions are strictly increasing and all change the value *)
  let rec strictly_changing prev = function
    | [] -> true
    | (t, v) :: rest ->
      (match prev with
      | Some (pt, pv) -> t > pt && not (Logic.equal v pv)
      | None -> not (Logic.equal v Logic.F))
      && strictly_changing (Some (t, v)) rest
  in
  strictly_changing None (Waveform.transitions w)

let test_waveform_pulses () =
  let w =
    Waveform.make ~initial:Logic.F
      [ (100, Logic.T); (150, Logic.F); (300, Logic.T); (900, Logic.F) ]
  in
  let all = Waveform.pulses w ~until:1000 in
  (* three closed pulses plus the final interval still open at 1000 *)
  Alcotest.(check int) "pulses incl. open tail" 4 (List.length all);
  let narrow = Waveform.pulses ~max_width:100 w ~until:1000 in
  Alcotest.(check int) "glitches incl. open tail" 2 (List.length narrow);
  let p = List.hd narrow in
  Alcotest.(check int) "start" 100 p.Waveform.start_ps;
  Alcotest.(check int) "stop" 150 p.Waveform.stop_ps;
  (* the open tail is clipped at the trace boundary *)
  let tail = List.nth narrow 1 in
  Alcotest.(check int) "tail start" 900 tail.Waveform.start_ps;
  Alcotest.(check int) "tail stop" 1000 tail.Waveform.stop_ps;
  (* a short bounded window never invents a pulse out of the tail *)
  Alcotest.(check int) "tail too wide for 50"
    1
    (List.length (Waveform.pulses ~max_width:50 w ~until:1000))

let test_waveform_pulses_edges () =
  let w = Waveform.make ~initial:Logic.F [ (100, Logic.T); (130, Logic.F) ] in
  (* the width filter is inclusive: a 30 ps pulse survives max_width 30 *)
  Alcotest.(check int) "width = max_width kept" 1
    (List.length
       (List.filter
          (fun p -> p.Waveform.start_ps = 100)
          (Waveform.pulses ~max_width:30 w ~until:200)));
  Alcotest.(check int) "width > max_width dropped" 0
    (List.length
       (List.filter
          (fun p -> p.Waveform.start_ps = 100)
          (Waveform.pulses ~max_width:29 w ~until:200)));
  (* every interval carries its level, including the low tail *)
  (match Waveform.pulses w ~until:200 with
  | [ hi; lo ] ->
    Alcotest.(check char) "high level" '1' (Logic.to_char hi.Waveform.level);
    Alcotest.(check char) "low tail level" '0' (Logic.to_char lo.Waveform.level);
    Alcotest.(check int) "low tail clipped" 200 lo.Waveform.stop_ps
  | ps -> Alcotest.failf "expected 2 intervals, got %d" (List.length ps));
  (* a closed pulse opening exactly at [until] is reported ... *)
  let at = Waveform.make ~initial:Logic.F [ (200, Logic.T); (260, Logic.F) ] in
  (match Waveform.pulses ~max_width:100 at ~until:200 with
  | [ p ] ->
    Alcotest.(check int) "at-boundary start" 200 p.Waveform.start_ps;
    Alcotest.(check int) "at-boundary true stop" 260 p.Waveform.stop_ps
  | ps -> Alcotest.failf "expected 1 pulse, got %d" (List.length ps));
  (* ... but an open tail starting exactly at [until] is not: it would
     be a zero-width artifact of the clipping *)
  let tail = Waveform.make ~initial:Logic.F [ (200, Logic.T) ] in
  Alcotest.(check int) "zero-width tail suppressed" 0
    (List.length (Waveform.pulses tail ~until:200))

let test_waveform_pulses_boundary () =
  (* A glitch that straddles the observation boundary: starts at 950,
     closes at 1010 > until.  It must be reported with its true width,
     not silently dropped. *)
  let w =
    Waveform.make ~initial:Logic.F
      [ (950, Logic.T); (1010, Logic.F); (1200, Logic.T) ]
  in
  let gl = Waveform.pulses ~max_width:100 w ~until:1000 in
  Alcotest.(check int) "straddling glitch found" 1 (List.length gl);
  let p = List.hd gl in
  Alcotest.(check int) "straddle start" 950 p.Waveform.start_ps;
  Alcotest.(check int) "straddle stop" 1010 p.Waveform.stop_ps;
  Alcotest.(check char) "straddle level" '1' (Logic.to_char p.Waveform.level);
  (* a pulse opened by the very last transition is clipped at [until] *)
  let w2 = Waveform.make ~initial:Logic.F [ (980, Logic.T) ] in
  (match Waveform.pulses ~max_width:100 w2 ~until:1000 with
  | [ p ] ->
    Alcotest.(check int) "open start" 980 p.Waveform.start_ps;
    Alcotest.(check int) "open stop" 1000 p.Waveform.stop_ps
  | l -> Alcotest.failf "expected one open pulse, got %d" (List.length l));
  (* nothing opens after [until] *)
  let w3 = Waveform.make ~initial:Logic.F [ (1050, Logic.T) ] in
  Alcotest.(check int) "no pulse past until" 0
    (List.length (Waveform.pulses w3 ~until:1000))

let test_waveform_toggle_delay () =
  let w = Waveform.toggle ~t0:100 ~period:200 ~start:Logic.F ~until:700 in
  Alcotest.(check int) "toggle count" 4 (List.length (Waveform.transitions w));
  Alcotest.(check char) "after first" '1' (Logic.to_char (Waveform.value_at w 150));
  let d = Waveform.delay w 50 in
  Alcotest.(check char) "delayed still old" '0' (Logic.to_char (Waveform.value_at d 120));
  Alcotest.(check char) "delayed new" '1' (Logic.to_char (Waveform.value_at d 150))

let test_waveform_map2 () =
  let a = Waveform.make ~initial:Logic.F [ (10, Logic.T) ] in
  let b = Waveform.make ~initial:Logic.T [ (20, Logic.F) ] in
  let w = Waveform.map2 Logic.land_ a b in
  Alcotest.(check char) "0&1" '0' (Logic.to_char (Waveform.value_at w 5));
  Alcotest.(check char) "1&1" '1' (Logic.to_char (Waveform.value_at w 15));
  Alcotest.(check char) "1&0" '0' (Logic.to_char (Waveform.value_at w 25))

let test_waveform_stability () =
  let w = Waveform.make ~initial:Logic.F [ (100, Logic.T) ] in
  Alcotest.(check bool) "stable before" true (Waveform.stable_in w ~from_:0 ~until:99);
  Alcotest.(check bool) "unstable across" false (Waveform.stable_in w ~from_:50 ~until:150);
  Alcotest.(check int) "changes" 1
    (List.length (Waveform.changes_in w ~from_:100 ~until:100))

(* ----- Cycle_sim ----- *)

let test_cycle_sim_counter () =
  (* 1-bit toggle counter: ff <- NOT ff *)
  let n = Netlist.create "t" in
  let placeholder = Netlist.add_const n false in
  let f = Netlist.add_ff n ~name:"f" placeholder in
  let inv = Netlist.add_gate n Cell.Not [| f |] in
  Netlist.set_fanin n ~node_id:f ~pin:0 ~driver:inv;
  Netlist.add_output n "q" f;
  let outs = Cycle_sim.run n ~cycles:4 ~stimulus:(fun _ _ -> false) in
  let qs = Array.to_list (Array.map (fun o -> List.assoc "q" o) outs) in
  (* value of Q during each cycle's evaluation: starts 0, then toggles *)
  Alcotest.(check (list bool)) "toggle" [ false; true; false; true ] qs

let test_cycle_sim_comb_guard () =
  let net = Benchmarks.s27 () in
  Alcotest.check_raises "needs comb"
    (Invalid_argument "Cycle_sim.comb_outputs: netlist has flip-flops")
    (fun () -> ignore (Cycle_sim.comb_outputs net ~inputs:(fun _ -> false)))

(* ----- Timing_sim ----- *)

(* A glitch-free pipeline settles to the same per-cycle values as the
   zero-delay simulator (after the edge-0 launch alignment). *)
let timing_matches_cycle_law seed =
  let net =
    Generator.generate
      {
        Generator.gen_name = "tm";
        seed;
        n_pi = 4;
        n_po = 3;
        n_ff = 4;
        n_gates = 18;
        depth = 4;
        ff_depth_bias = 0.2;
      }
  in
  let clock_ps = Sta.clock_for net ~margin:1.5 in
  let cycles = 6 in
  (* constant inputs: no input-induced hazards; FF captures must agree *)
  let rng = Random.State.make [| seed; 99 |] in
  let pi_vals =
    List.map (fun pi -> (pi, Random.State.bool rng)) (Netlist.inputs net)
  in
  let r =
    Timing_sim.run
      ~drive:(fun pi -> Timing_sim.Const (List.assoc pi pi_vals))
      net
      { Timing_sim.clock_ps; cycles }
  in
  (* cycle sim: timing edge k captures what cycle-sim computes in its
     step k+1 (edge 0 loaded step 0's capture) *)
  let sim = Cycle_sim.create net in
  let inputs id = List.assoc id pi_vals in
  ignore (Cycle_sim.step sim ~inputs);
  let ok = ref true in
  for k = 0 to cycles - 1 do
    ignore (Cycle_sim.step sim ~inputs);
    let state = Cycle_sim.state sim in
    Array.iteri
      (fun i ff ->
        let expected = Logic.of_bool (List.assoc ff state) in
        if not (Logic.equal r.Timing_sim.ff_samples.(i).(k) expected) then
          ok := false)
      r.Timing_sim.ff_ids
  done;
  !ok && r.Timing_sim.violations = []

let test_timing_glitch_propagation () =
  (* a pulse travels through a buffer chain, shifted by the chain delay *)
  let n = Netlist.create "t" in
  let a = Netlist.add_input n "a" in
  let b1 = Netlist.add_gate n Cell.Buf [| a |] in
  let b2 = Netlist.add_gate n Cell.Buf [| b1 |] in
  Netlist.add_output n "y" b2;
  let pulse = Waveform.make ~initial:Logic.F [ (1000, Logic.T); (1100, Logic.F) ] in
  let r =
    Timing_sim.run
      ~drive:(fun _ -> Timing_sim.Wave pulse)
      n
      { Timing_sim.clock_ps = 4000; cycles = 1 }
  in
  let y = Timing_sim.wave_of r n "n2" in
  let d = 2 * (Cell_lib.bind Cell.Buf 1).Cell.delay_ps in
  Alcotest.(check char) "pulse arrives" '1'
    (Logic.to_char (Waveform.value_at y (1050 + d)));
  Alcotest.(check char) "pulse ends" '0'
    (Logic.to_char (Waveform.value_at y (1150 + d)))

let test_timing_violation_detection () =
  (* a D transition inside the capture window must be flagged and latch X *)
  let n = Netlist.create "t" in
  let a = Netlist.add_input n "a" in
  let f = Netlist.add_ff n ~name:"f" a in
  Netlist.add_output n "q" f;
  let clock = 2000 in
  (* transition exactly at the edge: hold violation *)
  let w = Waveform.make ~initial:Logic.F [ (clock, Logic.T) ] in
  let r =
    Timing_sim.run
      ~drive:(fun _ -> Timing_sim.Wave w)
      n
      { Timing_sim.clock_ps = clock; cycles = 2 }
  in
  Alcotest.(check int) "one violation" 1 (List.length r.Timing_sim.violations);
  let v = List.hd r.Timing_sim.violations in
  Alcotest.(check bool) "hold kind" true
    (v.Timing_sim.v_kind = Timing_sim.Hold_violation);
  Alcotest.(check char) "latched X" 'x'
    (Logic.to_char r.Timing_sim.ff_samples.(0).(0));
  (* a transition comfortably after the hold window is clean *)
  let w2 = Waveform.make ~initial:Logic.F [ (clock + 500, Logic.T) ] in
  let r2 =
    Timing_sim.run
      ~drive:(fun _ -> Timing_sim.Wave w2)
      n
      { Timing_sim.clock_ps = clock; cycles = 2 }
  in
  Alcotest.(check int) "clean" 0 (List.length r2.Timing_sim.violations);
  Alcotest.(check char) "captures late value" '1'
    (Logic.to_char r2.Timing_sim.ff_samples.(0).(1))

let test_timing_setup_violation () =
  let n = Netlist.create "t" in
  let a = Netlist.add_input n "a" in
  let f = Netlist.add_ff n ~name:"f" a in
  Netlist.add_output n "q" f;
  let clock = 2000 in
  (* transition 30 ps before the edge: inside the 100 ps setup window *)
  let w = Waveform.make ~initial:Logic.F [ (clock - 30, Logic.T) ] in
  let r =
    Timing_sim.run
      ~drive:(fun _ -> Timing_sim.Wave w)
      n
      { Timing_sim.clock_ps = clock; cycles = 1 }
  in
  Alcotest.(check int) "one violation" 1 (List.length r.Timing_sim.violations);
  Alcotest.(check bool) "setup kind" true
    ((List.hd r.Timing_sim.violations).Timing_sim.v_kind = Timing_sim.Setup_violation)

let test_timing_gk_fig4 () =
  (* the exact Fig. 4 waveform: checked as data, not just rendered *)
  let net = Netlist.create "fig4" in
  let x = Netlist.add_input net "x" in
  let key = Netlist.add_input net "key" in
  let gk =
    Gk.insert net ~profile:`Custom ~name:"gk" ~x ~key
      ~variant:Gk.Invert_on_const ~d_path_a_ps:2000 ~d_path_b_ps:3000 ()
  in
  Netlist.add_output net "y" gk.Gk.out;
  let drive pi =
    if pi = x then Timing_sim.Const true
    else
      Timing_sim.Wave
        (Waveform.make ~initial:Logic.F [ (3000, Logic.T); (11000, Logic.F) ])
  in
  let r = Timing_sim.run ~drive net { Timing_sim.clock_ps = 20000; cycles = 1 } in
  let y = Timing_sim.wave_of r net "gk_mux" in
  let d_mux = gk.Gk.d_mux_ps in
  let expected =
    [
      (3000 + d_mux, Logic.T);
      (3000 + 3000 + d_mux, Logic.F);
      (11000 + d_mux, Logic.T);
      (11000 + 2000 + d_mux, Logic.F);
    ]
  in
  Alcotest.(check bool) "fig4 transitions" true
    (Waveform.equal y (Waveform.make ~initial:Logic.F expected))

let test_timing_po_sampling () =
  let n = Netlist.create "t" in
  let a = Netlist.add_input n "a" in
  Netlist.add_output n "y" a;
  let w = Waveform.make ~initial:Logic.F [ (1500, Logic.T) ] in
  let r =
    Timing_sim.run ~drive:(fun _ -> Timing_sim.Wave w) n
      { Timing_sim.clock_ps = 1000; cycles = 3 }
  in
  let samples = List.assoc "y" r.Timing_sim.po_samples in
  Alcotest.(check string) "po samples" "011"
    (String.init 3 (fun i -> Logic.to_char samples.(i)))

let test_timing_guards () =
  let n = Netlist.create "t" in
  ignore (Netlist.add_input n "a");
  Alcotest.check_raises "bad clock"
    (Invalid_argument "Timing_sim.run: clock period shorter than FF timing arcs")
    (fun () -> ignore (Timing_sim.run n { Timing_sim.clock_ps = 200; cycles = 1 }))

let suites =
  [
    ( "sim.logic",
      [
        tc "tables" `Quick test_logic_tables;
        tc "lut" `Quick test_logic_eval_lut;
        qcheck "de morgan (3-valued)" QCheck.(pair logic_arb logic_arb) de_morgan_law;
        qcheck "agrees with bool eval"
          QCheck.(
            pair
              (map Logic.of_bool bool)
              (map Logic.of_bool bool))
          logic_matches_bool_law;
      ] );
    ( "sim.event_queue",
      [
        tc "order" `Quick test_event_queue_order;
        qcheck "drains sorted" QCheck.(list small_nat) event_queue_sorted_law;
      ] );
    ( "sim.waveform",
      [
        tc "normalize" `Quick test_waveform_normalize;
        tc "pulses" `Quick test_waveform_pulses;
        tc "pulses at trace boundary" `Quick test_waveform_pulses_boundary;
        tc "pulses width/level edges" `Quick test_waveform_pulses_edges;
        tc "toggle/delay" `Quick test_waveform_toggle_delay;
        tc "map2" `Quick test_waveform_map2;
        tc "stability" `Quick test_waveform_stability;
        qcheck "make produces canonical waveforms"
          QCheck.(list (pair int bool))
          waveform_value_consistent_law;
      ] );
    ( "sim.cycle",
      [
        tc "toggle counter" `Quick test_cycle_sim_counter;
        tc "comb guard" `Quick test_cycle_sim_comb_guard;
      ] );
    ( "sim.timing",
      [
        tc "glitch propagation" `Quick test_timing_glitch_propagation;
        tc "hold violation" `Quick test_timing_violation_detection;
        tc "setup violation" `Quick test_timing_setup_violation;
        tc "fig4 GK waveform" `Quick test_timing_gk_fig4;
        tc "po sampling" `Quick test_timing_po_sampling;
        tc "guards" `Quick test_timing_guards;
        qcheck ~count:25 "matches cycle sim on stable inputs"
          (QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 500))
          timing_matches_cycle_law;
      ] );
  ]
