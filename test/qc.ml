(* Shared qcheck → alcotest adapter, seeded through Fuzz_seed so every
   property test in the suite draws from GKLOCK_SEED (default 42): runs
   are reproducible, and a failing property's test name carries the
   exact environment needed to replay it.  Each test derives its own
   stream from a hash of its name, so adding or reordering tests never
   perturbs another test's inputs. *)

let qcheck ?(count = 100) name arb law =
  QCheck_alcotest.to_alcotest
    ~rand:(Fuzz_seed.derive (Hashtbl.hash name))
    (QCheck.Test.make ~count
       ~name:(Printf.sprintf "%s [replay: %s]" name (Fuzz_seed.replay_hint ()))
       arb law)
