(* Tests for the SAT stack: literals, CNF, the CDCL solver (cross-checked
   against brute force), Tseitin encoding and equivalence checking. *)

let tc = Alcotest.test_case

let qcheck ?(count = 100) name arb law = Qc.qcheck ~count name arb law

(* ----- Lit ----- *)

let test_lit_roundtrips () =
  for v = 0 to 20 do
    let p = Lit.pos v and n = Lit.neg v in
    Alcotest.(check int) "var pos" v (Lit.var p);
    Alcotest.(check int) "var neg" v (Lit.var n);
    Alcotest.(check bool) "polarity" true (Lit.is_pos p && not (Lit.is_pos n));
    Alcotest.(check int) "negate" n (Lit.negate p);
    Alcotest.(check int) "dimacs pos" p (Lit.of_dimacs (Lit.to_dimacs p));
    Alcotest.(check int) "dimacs neg" n (Lit.of_dimacs (Lit.to_dimacs n))
  done;
  Alcotest.check_raises "dimacs 0" (Invalid_argument "Lit.of_dimacs: zero")
    (fun () -> ignore (Lit.of_dimacs 0))

(* ----- Cnf ----- *)

let test_cnf_eval () =
  let f = Cnf.create () in
  let a = Cnf.new_var f and b = Cnf.new_var f in
  Cnf.add_clause f [ Lit.pos a; Lit.pos b ];
  Cnf.add_clause f [ Lit.neg a ];
  Alcotest.(check bool) "sat assignment" true
    (Cnf.eval f (fun v -> v = b));
  Alcotest.(check bool) "unsat assignment" false (Cnf.eval f (fun _ -> false));
  (match Cnf.brute_force f with
  | Some model ->
    Alcotest.(check bool) "model" true (model.(b) && not model.(a))
  | None -> Alcotest.fail "should be sat")

(* ----- Solver ----- *)

let test_solver_trivial () =
  let s = Solver.create () in
  Alcotest.(check bool) "empty sat" true (Solver.solve s = Solver.Sat);
  let a = Solver.new_var s in
  ignore (Solver.add_clause s [ Lit.pos a ]);
  Alcotest.(check bool) "unit sat" true (Solver.solve s = Solver.Sat);
  Alcotest.(check bool) "value" true (Solver.value s a);
  Alcotest.(check bool) "conflicting unit" false
    (Solver.add_clause s [ Lit.neg a ]);
  Alcotest.(check bool) "now unsat" true (Solver.solve s = Solver.Unsat)

let test_solver_empty_clause () =
  let s = Solver.create () in
  Alcotest.(check bool) "empty clause" false (Solver.add_clause s []);
  Alcotest.(check bool) "unsat forever" true (Solver.solve s = Solver.Unsat)

let test_solver_tautology_dup () =
  let s = Solver.create () in
  let a = Solver.new_var s in
  Alcotest.(check bool) "tautology ok" true
    (Solver.add_clause s [ Lit.pos a; Lit.neg a ]);
  Alcotest.(check bool) "dup lits ok" true
    (Solver.add_clause s [ Lit.pos a; Lit.pos a ]);
  Alcotest.(check bool) "sat" true (Solver.solve s = Solver.Sat);
  Alcotest.(check bool) "forced" true (Solver.value s a)

let pigeonhole holes =
  (* holes+1 pigeons into `holes` holes: unsatisfiable *)
  let s = Solver.create () in
  let v = Array.init (holes + 1) (fun _ -> Array.init holes (fun _ -> Solver.new_var s)) in
  Array.iter
    (fun row -> ignore (Solver.add_clause s (Array.to_list (Array.map Lit.pos row))))
    v;
  for h = 0 to holes - 1 do
    for p1 = 0 to holes do
      for p2 = p1 + 1 to holes do
        ignore (Solver.add_clause s [ Lit.neg v.(p1).(h); Lit.neg v.(p2).(h) ])
      done
    done
  done;
  s

let test_solver_pigeonhole () =
  List.iter
    (fun n ->
      Alcotest.(check bool)
        (Printf.sprintf "php %d" n)
        true
        (Solver.solve (pigeonhole n) = Solver.Unsat))
    [ 2; 3; 4; 5 ]

let test_solver_assumptions () =
  let s = Solver.create () in
  let a = Solver.new_var s and b = Solver.new_var s in
  ignore (Solver.add_clause s [ Lit.neg a; Lit.pos b ]);
  Alcotest.(check bool) "a & ~b unsat" true
    (Solver.solve ~assumptions:[ Lit.pos a; Lit.neg b ] s = Solver.Unsat);
  Alcotest.(check bool) "a sat" true
    (Solver.solve ~assumptions:[ Lit.pos a ] s = Solver.Sat);
  Alcotest.(check bool) "implied" true (Solver.value s b);
  Alcotest.(check bool) "assumptions retract" true (Solver.solve s = Solver.Sat)

let random_cnf_arb =
  QCheck.make
    ~print:(fun (nv, cls) ->
      Printf.sprintf "%d vars, %d clauses" nv (List.length cls))
    QCheck.Gen.(
      int_range 3 10 >>= fun nv ->
      list_size (int_range 1 (4 * nv))
        (list_size (int_range 1 3)
           (map2 (fun v pos -> Lit.make (v mod nv) pos) (int_bound (nv - 1)) bool))
      >>= fun cls -> return (nv, cls))

let solver_vs_brute_law (nv, cls) =
  let cnf = Cnf.create () in
  for _ = 1 to nv do ignore (Cnf.new_var cnf) done;
  let s = Solver.create () in
  for _ = 1 to nv do ignore (Solver.new_var s) done;
  let ok = ref true in
  List.iter
    (fun c ->
      Cnf.add_clause cnf c;
      if not (Solver.add_clause s c) then ok := false)
    cls;
  let expected = Cnf.brute_force cnf <> None in
  let got = !ok && Solver.solve s = Solver.Sat in
  expected = got
  && ((not got) || Cnf.eval cnf (fun v -> Solver.value s v))

let solver_incremental_law (nv, cls) =
  (* Adding clauses one solve at a time agrees with adding them all. *)
  let mk () =
    let s = Solver.create () in
    for _ = 1 to nv do ignore (Solver.new_var s) done;
    s
  in
  let s_all = mk () and s_inc = mk () in
  let ok_all = List.for_all (fun c -> Solver.add_clause s_all c) cls in
  let r_all = if ok_all then Solver.solve s_all else Solver.Unsat in
  let r_inc =
    List.fold_left
      (fun acc c ->
        if acc = Solver.Unsat then Solver.Unsat
        else if not (Solver.add_clause s_inc c) then Solver.Unsat
        else Solver.solve s_inc)
      Solver.Sat cls
  in
  r_all = r_inc

(* ----- Tseitin ----- *)

let exhaustive_gate_check fn arity =
  let net = Netlist.create "g" in
  let pis = Array.init arity (fun i -> Netlist.add_input net (Printf.sprintf "i%d" i)) in
  let g = Netlist.add_gate net fn pis in
  Netlist.add_output net "y" g;
  let ok = ref true in
  for row = 0 to (1 lsl arity) - 1 do
    let bit i = row land (1 lsl i) <> 0 in
    let solver = Solver.create () in
    let vars = Tseitin.encode_simple solver net in
    Array.iteri
      (fun i pi -> ignore (Solver.add_clause solver [ Lit.make vars.(pi) (bit i) ]))
      pis;
    (match Solver.solve solver with
    | Solver.Sat ->
      let expected = Cell.eval fn (Array.init arity bit) in
      if Solver.value solver vars.(g) <> expected then ok := false
    | Solver.Unsat -> ok := false)
  done;
  !ok

let test_tseitin_gates () =
  List.iter
    (fun (fn, arity) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s/%d" (Cell.fn_name fn) arity)
        true
        (exhaustive_gate_check fn arity))
    [
      (Cell.Not, 1); (Cell.Buf, 1); (Cell.And, 2); (Cell.And, 4);
      (Cell.Or, 3); (Cell.Nand, 2); (Cell.Nand, 3); (Cell.Nor, 2);
      (Cell.Xor, 2); (Cell.Xor, 3); (Cell.Xor, 4); (Cell.Xnor, 2);
      (Cell.Xnor, 3); (Cell.Mux, 3);
    ]

let test_tseitin_lut () =
  let net = Netlist.create "l" in
  let a = Netlist.add_input net "a" in
  let b = Netlist.add_input net "b" in
  let c = Netlist.add_input net "c" in
  let truth = Array.init 8 (fun i -> i = 1 || i = 6 || i = 7) in
  let l = Netlist.add_lut net ~truth [| a; b; c |] in
  Netlist.add_output net "y" l;
  let ok = ref true in
  for row = 0 to 7 do
    let bit i = row land (1 lsl i) <> 0 in
    let solver = Solver.create () in
    let vars = Tseitin.encode_simple solver net in
    List.iteri
      (fun i pi -> ignore (Solver.add_clause solver [ Lit.make vars.(pi) (bit i) ]))
      [ a; b; c ];
    (match Solver.solve solver with
    | Solver.Sat -> if Solver.value solver vars.(l) <> truth.(row) then ok := false
    | Solver.Unsat -> ok := false)
  done;
  Alcotest.(check bool) "lut rows" true !ok

let test_tseitin_rejects_ffs () =
  let net = Benchmarks.s27 () in
  let solver = Solver.create () in
  Alcotest.check_raises "ff guard"
    (Invalid_argument "Tseitin: netlist has flip-flops (combinationalize first)")
    (fun () -> ignore (Tseitin.encode_simple solver net))

let tseitin_vs_eval_law seed =
  let net =
    Generator.generate
      {
        Generator.gen_name = "tv";
        seed;
        n_pi = 5;
        n_po = 3;
        n_ff = 0;
        n_gates = 20;
        depth = 5;
        ff_depth_bias = 0.0;
      }
  in
  let rng = Random.State.make [| seed; 5 |] in
  let assignment = List.map (fun pi -> (pi, Random.State.bool rng)) (Netlist.inputs net) in
  let solver = Solver.create () in
  let vars = Tseitin.encode_simple solver net in
  List.iter
    (fun (pi, b) -> ignore (Solver.add_clause solver [ Lit.make vars.(pi) b ]))
    assignment;
  Solver.solve solver = Solver.Sat
  &&
  let values = Netlist.eval_comb net (fun id -> List.assoc id assignment) in
  List.for_all
    (fun (_, d) -> values.(d) = Solver.value solver vars.(d))
    (Netlist.outputs net)

let test_to_cnf () =
  let net = Netlist.create "c" in
  let a = Netlist.add_input net "a" in
  let g = Netlist.add_gate net Cell.Not [| a |] in
  Netlist.add_output net "y" g;
  let cnf, vars = Tseitin.to_cnf net in
  Alcotest.(check int) "clauses" 2 (Cnf.num_clauses cnf);
  Alcotest.(check bool) "vars assigned" true (vars.(a) >= 0 && vars.(g) >= 0)

(* ----- Equiv ----- *)

let test_equiv_basic () =
  let mk invert =
    let n = Netlist.create (if invert then "b" else "a") in
    let x = Netlist.add_input n "x" in
    let y = Netlist.add_input n "y" in
    let g = Netlist.add_gate n Cell.And [| x; y |] in
    let out = if invert then Netlist.add_gate n Cell.Not [| g |] else g in
    Netlist.add_output n "o" out;
    n
  in
  Alcotest.(check bool) "equal" true (Equiv.check (mk false) (mk false) = Equiv.Equivalent);
  (match Equiv.check (mk false) (mk true) with
  | Equiv.Different w -> Alcotest.(check int) "witness arity" 2 (List.length w)
  | Equiv.Equivalent -> Alcotest.fail "inverted said equivalent")

let test_equiv_fixed_keys () =
  (* y = x xor k: equivalent to buffer iff k = 0 *)
  let locked = Netlist.create "lk" in
  let x = Netlist.add_input locked "x" in
  let k = Netlist.add_input locked "k" in
  let g = Netlist.add_gate locked Cell.Xor [| x; k |] in
  Netlist.add_output locked "o" g;
  let plain = Netlist.create "pl" in
  let x2 = Netlist.add_input plain "x" in
  let b = Netlist.add_gate plain Cell.Buf [| x2 |] in
  Netlist.add_output plain "o" b;
  Alcotest.(check bool) "k=0 equivalent" true
    (Equiv.check ~fixed_a:[ ("k", false) ] locked plain = Equiv.Equivalent);
  Alcotest.(check bool) "k=1 different" true
    (Equiv.check ~fixed_a:[ ("k", true) ] locked plain <> Equiv.Equivalent)

let test_equiv_po_mismatch () =
  let a = Netlist.create "a" in
  let x = Netlist.add_input a "x" in
  Netlist.add_output a "o1" x;
  let b = Netlist.create "b" in
  let y = Netlist.add_input b "x" in
  Netlist.add_output b "o2" y;
  Alcotest.check_raises "po names"
    (Invalid_argument "Equiv.check: primary-output name sets differ")
    (fun () -> ignore (Equiv.check a b))

(* ----- Dimacs ----- *)

let test_dimacs_roundtrip () =
  let cnf = Cnf.create () in
  let a = Cnf.new_var cnf and b = Cnf.new_var cnf and c = Cnf.new_var cnf in
  Cnf.add_clause cnf [ Lit.pos a; Lit.neg b ];
  Cnf.add_clause cnf [ Lit.neg a; Lit.pos b; Lit.pos c ];
  Cnf.add_clause cnf [ Lit.neg c ];
  let text = Dimacs.to_string cnf in
  let cnf2 = Dimacs.of_string text in
  Alcotest.(check int) "vars" (Cnf.num_vars cnf) (Cnf.num_vars cnf2);
  Alcotest.(check int) "clauses" (Cnf.num_clauses cnf) (Cnf.num_clauses cnf2);
  Alcotest.(check string) "stable" text (Dimacs.to_string cnf2)

let test_dimacs_parse () =
  let cnf = Dimacs.of_string "c comment\np cnf 3 2\n1 -2 0\n2 3 0\n" in
  Alcotest.(check int) "vars" 3 (Cnf.num_vars cnf);
  Alcotest.(check int) "clauses" 2 (Cnf.num_clauses cnf)

let suites =
  [
    ("sat.lit", [ tc "round trips" `Quick test_lit_roundtrips ]);
    ("sat.cnf", [ tc "eval/brute" `Quick test_cnf_eval ]);
    ( "sat.solver",
      [
        tc "trivial" `Quick test_solver_trivial;
        tc "empty clause" `Quick test_solver_empty_clause;
        tc "tautology/dups" `Quick test_solver_tautology_dup;
        tc "pigeonhole" `Quick test_solver_pigeonhole;
        tc "assumptions" `Quick test_solver_assumptions;
        qcheck ~count:300 "agrees with brute force" random_cnf_arb
          solver_vs_brute_law;
        qcheck ~count:100 "incremental = batch" random_cnf_arb
          solver_incremental_law;
      ] );
    ( "sat.tseitin",
      [
        tc "all gate types (exhaustive)" `Quick test_tseitin_gates;
        tc "lut" `Quick test_tseitin_lut;
        tc "rejects flip-flops" `Quick test_tseitin_rejects_ffs;
        tc "to_cnf" `Quick test_to_cnf;
        qcheck ~count:50 "encoding matches eval"
          (QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 500))
          tseitin_vs_eval_law;
      ] );
    ( "sat.equiv",
      [
        tc "basic" `Quick test_equiv_basic;
        tc "fixed keys" `Quick test_equiv_fixed_keys;
        tc "po mismatch" `Quick test_equiv_po_mismatch;
      ] );
    ( "sat.dimacs",
      [
        tc "round trip" `Quick test_dimacs_roundtrip;
        tc "parse" `Quick test_dimacs_parse;
      ] );
  ]
