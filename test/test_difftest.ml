(* Tests for the differential fuzzing subsystem: the generators and the
   mutator produce valid netlists, the oracle stack agrees with itself
   on seeded batches, an injected reference bug is caught and shrunk to
   a small replayable witness, the corpus round-trips through disk, and
   the committed corpus/ regression cases replay clean. *)

let tc = Alcotest.test_case
let qcheck ?(count = 50) name arb law = Qc.qcheck ~count name arb law
let seed = Fuzz_seed.value ()

(* ----- generators and mutator ----- *)

let gen_valid_law s =
  let rng = Random.State.make [| s; 0x6e |] in
  let net = Netlist_gen.net rng in
  Netlist.validate net;
  Netlist.inputs net <> [] && Netlist.outputs net <> []

let mutant_valid_law s =
  let rng = Random.State.make [| s; 0x6f |] in
  let case = Netlist_gen.case rng in
  match Netlist_mutate.random rng case with
  | None -> true (* no mutable site: fine for degenerate nets *)
  | Some (case', m) ->
    Netlist.validate case'.Fuzz_case.net;
    ignore (Netlist_mutate.describe m);
    (* the original case is untouched *)
    Netlist.validate case.Fuzz_case.net;
    true

(* ----- oracle stack on healthy inputs ----- *)

let oracle_clean_law s =
  let rng = Random.State.make [| s; 0x70 |] in
  let case = Netlist_gen.case rng in
  match Diff_oracle.check ~seed:s case with
  | [] -> true
  | m :: _ ->
    QCheck.Test.fail_reportf "oracle disagreement: %s"
      (Diff_oracle.mismatch_to_string m)

let test_lock_props_smoke () =
  List.iter
    (fun scheme ->
      match Lock_props.check ~seed:(seed + 17) scheme with
      | [] -> ()
      | m :: _ ->
        Alcotest.failf "%s: %s"
          (Lock_props.scheme_name scheme)
          (Diff_oracle.mismatch_to_string m))
    Lock_props.all

(* ----- fault injection: the fuzzer must catch a planted bug ----- *)

let test_fault_caught_and_shrunk () =
  List.iter
    (fun fault ->
      let report =
        Fuzz.run ~fault ~workers:1
          ~families:[ Fuzz.Generated; Fuzz.Adversarial; Fuzz.Mutated ]
          ~seed ~cases:60 ()
      in
      match report.Fuzz.r_failures with
      | [] ->
        Alcotest.failf "fault %s not detected in 60 cases"
          (Ref_sim.fault_name fault)
      | f :: _ -> (
        Alcotest.(check bool)
          (Ref_sim.fault_name fault ^ " has mismatches")
          true (f.Fuzz.f_mismatches <> []);
        match f.Fuzz.f_case with
        | None -> Alcotest.fail "no witness case"
        | Some c ->
          (* the shrunk witness still fails, and shrank below the raw
             generator's typical size *)
          Alcotest.(check bool) "witness still fails" true
            (Diff_oracle.check ~fault ~seed:f.Fuzz.f_seed c <> []);
          Alcotest.(check bool) "witness is small" true
            (Shrinker.size c <= 120)))
    Ref_sim.all_faults

let test_shrinker_minimizes () =
  (* a synthetic predicate: "the net still contains a NOR gate" — the
     shrinker must keep one NOR and dissolve everything else *)
  let rng = Random.State.make [| seed; 0x71 |] in
  let case = ref (Netlist_gen.case rng) in
  let has_nor (c : Fuzz_case.t) =
    let n = c.Fuzz_case.net in
    let found = ref false in
    for id = 0 to Netlist.num_nodes n - 1 do
      match (Netlist.node n id).Netlist.kind with
      | Netlist.Gate Cell.Nor -> found := true
      | _ -> ()
    done;
    !found
  in
  while not (has_nor !case) do case := Netlist_gen.case rng done;
  let shrunk = Shrinker.minimize ~failing:has_nor !case in
  Alcotest.(check bool) "property preserved" true (has_nor shrunk);
  Alcotest.(check bool) "strictly smaller" true
    (Shrinker.size shrunk < Shrinker.size !case);
  Alcotest.(check bool) "cycles minimized" true (shrunk.Fuzz_case.cycles <= 1)

(* ----- corpus persistence ----- *)

let test_corpus_roundtrip () =
  let rng = Random.State.make [| seed; 0x72 |] in
  let case = Netlist_gen.case rng in
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "gklock_corpus_test_%d" (Unix.getpid ()))
  in
  let bench, stim = Corpus.save ~dir ~name:"rt" case in
  let case' = Corpus.load ~bench ~stim in
  Alcotest.(check int) "cycles" case.Fuzz_case.cycles case'.Fuzz_case.cycles;
  Alcotest.(check bool) "init" true (case.Fuzz_case.init = case'.Fuzz_case.init);
  Alcotest.(check bool) "stim" true (case.Fuzz_case.stim = case'.Fuzz_case.stim);
  (* the loaded case must mean the same circuit: the reference runs of
     original and reloaded case agree cycle by cycle (flip-flop states
     compared by name — the reparsed net assigns fresh node ids) *)
  let obs (c : Fuzz_case.t) =
    Array.map
      (fun (pos, ffs) ->
        ( pos,
          List.map
            (fun (id, v) ->
              ((Netlist.node c.Fuzz_case.net id).Netlist.name, v))
            ffs ))
      (Ref_sim.run c)
  in
  Alcotest.(check bool) "same semantics" true (obs case = obs case');
  (match Corpus.load_all dir with
  | [ ("rt", _) ] -> ()
  | l -> Alcotest.failf "load_all found %d entries" (List.length l));
  Sys.remove bench;
  (match Corpus.load_all dir with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "orphan .stim not reported");
  Sys.remove stim

(* ----- the committed corpus replays clean on HEAD ----- *)

let test_committed_corpus_replays () =
  (* dune materializes test/corpus/* next to the test executable (see
     the glob_files dep); resolve relative to the binary so the test
     also works under `dune exec` from the repo root *)
  let dir = Filename.concat (Filename.dirname Sys.executable_name) "corpus" in
  let entries = Corpus.load_all dir in
  Alcotest.(check bool) "corpus present" true (List.length entries >= 3);
  List.iter
    (fun (name, case) ->
      match Corpus.replay ~seed case with
      | [] -> ()
      | m :: _ ->
        Alcotest.failf "%s: %s" name (Diff_oracle.mismatch_to_string m))
    entries

(* ----- seeded fuzz batch (tier-1 smoke of the whole driver) ----- *)

let test_fuzz_batch_clean () =
  let report = Fuzz.run ~workers:1 ~seed ~cases:24 () in
  Alcotest.(check int) "all cases ran" 24 report.Fuzz.r_cases_run;
  match report.Fuzz.r_failures with
  | [] -> ()
  | f :: _ ->
    Alcotest.failf "fuzz failure (%s): %s" (Fuzz.replay_command report f)
      (Format.asprintf "%a" Fuzz.pp_failure f)

let test_seed_derivation () =
  (* distinct tags give independent streams; equal tags replay *)
  let a = Fuzz_seed.derive 1 and b = Fuzz_seed.derive 1 in
  Alcotest.(check int) "same tag replays" (Random.State.int a 1000000)
    (Random.State.int b 1000000);
  let c = Fuzz_seed.derive 2 in
  Alcotest.(check bool) "hint names the env var" true
    (String.length (Fuzz_seed.replay_hint ()) > 0);
  ignore (Random.State.int c 2)

let suites =
  [
    ( "difftest.generators",
      [
        qcheck ~count:40 "generated nets validate"
          QCheck.(int_bound 1_000_000)
          gen_valid_law;
        qcheck ~count:40 "mutants validate, originals untouched"
          QCheck.(int_bound 1_000_000)
          mutant_valid_law;
      ] );
    ( "difftest.oracles",
      [
        qcheck ~count:30 "oracle stack agrees on healthy nets"
          QCheck.(int_bound 1_000_000)
          oracle_clean_law;
        tc "lock properties hold" `Slow test_lock_props_smoke;
      ] );
    ( "difftest.fuzzer",
      [
        tc "injected faults caught and shrunk" `Slow
          test_fault_caught_and_shrunk;
        tc "shrinker minimizes" `Quick test_shrinker_minimizes;
        tc "seeded batch clean" `Slow test_fuzz_batch_clean;
        tc "seed derivation" `Quick test_seed_derivation;
      ] );
    ( "difftest.corpus",
      [
        tc "save/load round-trip" `Quick test_corpus_roundtrip;
        tc "committed corpus replays clean" `Quick
          test_committed_corpus_replays;
      ] );
  ]
