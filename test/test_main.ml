(* Test_systest runs first: its process-supervision and daemon tests
   Unix.fork, which OCaml 5 forbids once any other domain has been
   created — and later suites (campaign timeouts) abandon domains
   that stay alive for the rest of the process. *)
let () =
  Alcotest.run "gklock"
    (Test_systest.suites @ Test_util.suites @ Test_netlist.suites @ Test_engine.suites @ Test_sim.suites @ Test_sta.suites @ Test_sat.suites @ Test_flow.suites @ Test_locking.suites @ Test_attacks.suites @ Test_framework.suites @ Test_integration.suites @ Test_scan.suites @ Test_extensions.suites @ Test_core.suites @ Test_campaign.suites @ Test_difftest.suites @ Test_obs.suites @ Test_net.suites)
