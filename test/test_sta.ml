(* Tests for static timing analysis, the GK timing rules (Eqs. 1-6) and
   true/false violation discrimination. *)

let tc = Alcotest.test_case

let qcheck ?(count = 100) name arb law = Qc.qcheck ~count name arb law

(* A hand-built pipeline with known delays:
   pi -> NOT(40) -> AND2(75) -> ff1 ; ff1 -> XOR2(95) -> ff2, po *)
let pipeline () =
  let n = Netlist.create "pipe" in
  let a = Netlist.add_input n "a" in
  let g1 = Netlist.add_gate n ~name:"g1" Cell.Not [| a |] in
  let g2 = Netlist.add_gate n ~name:"g2" Cell.And [| g1; a |] in
  let f1 = Netlist.add_ff n ~name:"f1" g2 in
  let g3 = Netlist.add_gate n ~name:"g3" Cell.Xor [| f1; a |] in
  let f2 = Netlist.add_ff n ~name:"f2" g3 in
  Netlist.add_output n "y" g3;
  (n, a, g1, g2, f1, g3, f2)

let test_sta_arrivals () =
  let n, _, g1, g2, _, g3, _ = pipeline () in
  let sta = Sta.analyze n ~clock_ps:2000 in
  Alcotest.(check int) "g1 amax" 40 (Sta.arrival sta g1).Sta.amax;
  Alcotest.(check int) "g2 amax" 115 (Sta.arrival sta g2).Sta.amax;
  (* g2 amin: direct a input path = 75 *)
  Alcotest.(check int) "g2 amin" 75 (Sta.arrival sta g2).Sta.amin;
  (* g3: max(clk2q(150), 0) + 95 = 245; min = 95 *)
  Alcotest.(check int) "g3 amax" 245 (Sta.arrival sta g3).Sta.amax;
  Alcotest.(check int) "g3 amin" 95 (Sta.arrival sta g3).Sta.amin

let test_sta_bounds_slack () =
  let n, _, _, _, f1, _, f2 = pipeline () in
  let clock = 2000 in
  let sta = Sta.analyze n ~clock_ps:clock in
  let lb, ub = Sta.lb_ub sta f1 in
  Alcotest.(check int) "LB = hold" Cell_lib.dff_hold_ps lb;
  Alcotest.(check int) "UB = clk - setup" (clock - Cell_lib.dff_setup_ps) ub;
  Alcotest.(check int) "f1 setup slack" (ub - 115) (Sta.setup_slack sta f1);
  Alcotest.(check int) "f2 setup slack" (ub - 245) (Sta.setup_slack sta f2);
  Alcotest.(check int) "f2 hold slack" (95 - lb) (Sta.hold_slack sta f2)

let test_sta_critical_and_clock () =
  let n, _, _, _, _, _, _ = pipeline () in
  Alcotest.(check int) "critical" 245 (Sta.critical_path_ps n);
  Alcotest.(check int) "min clock" (245 + Cell_lib.dff_setup_ps) (Sta.min_clock_ps n);
  let c = Sta.clock_for n ~margin:1.0 in
  Alcotest.(check bool) "rounded to 10" true (c mod 10 = 0 && c >= 345);
  Alcotest.check_raises "margin < 1"
    (Invalid_argument "Sta.clock_for: margin below 1.0") (fun () ->
      ignore (Sta.clock_for n ~margin:0.5))

let sta_vs_paths_law seed =
  (* amax at every FF D equals the longest path found by explicit DFS. *)
  let net =
    Generator.generate
      {
        Generator.gen_name = "sp";
        seed;
        n_pi = 4;
        n_po = 2;
        n_ff = 3;
        n_gates = 15;
        depth = 4;
        ff_depth_bias = 0.3;
      }
  in
  let sta = Sta.analyze net ~clock_ps:5000 in
  let delay id =
    let nd = Netlist.node net id in
    match (nd.Netlist.kind, nd.Netlist.cell) with
    | Netlist.Gate _, Some c -> c.Cell.delay_ps
    | _ -> 0
  in
  let rec longest id =
    let nd = Netlist.node net id in
    match nd.Netlist.kind with
    | Netlist.Input | Netlist.Const _ -> 0
    | Netlist.Ff -> Cell_lib.dff_clk2q_ps
    | Netlist.Gate _ | Netlist.Lut _ ->
      delay id + Array.fold_left (fun acc f -> max acc (longest f)) 0 nd.Netlist.fanins
    | Netlist.Dead -> 0
  in
  List.for_all
    (fun ff ->
      (Sta.ff_d_arrival sta ff).Sta.amax
      = longest (Netlist.node net ff).Netlist.fanins.(0))
    (Netlist.ffs net)

(* ----- Gk_timing ----- *)

let site ~t_arrival ~clock =
  {
    Gk_timing.t_arrival;
    lb = Cell_lib.dff_hold_ps;
    ub = clock - Cell_lib.dff_setup_ps;
    t_j = clock;
    t_setup = Cell_lib.dff_setup_ps;
    t_hold = Cell_lib.dff_hold_ps;
  }

let test_gk_timing_eq2 () =
  Alcotest.(check int) "l_glitch" 1000 (Gk_timing.l_glitch ~d_path:910 ~d_mux:90);
  Alcotest.(check int) "min on-level" 150
    (Gk_timing.min_on_level_glitch ~t_setup:100 ~t_hold:50)

let test_gk_timing_eq3 () =
  let s = site ~t_arrival:1000 ~clock:4000 in
  (* t_arrival + (l - mux) + mux = 1000 + 1000 = 2000 <= 3900 *)
  Alcotest.(check bool) "feasible" true
    (Gk_timing.feasible_on_level s ~l_glitch:1000 ~d_mux:90);
  let tight = site ~t_arrival:3200 ~clock:4000 in
  (* 3200 + 1000 = 4200 > 3900 *)
  Alcotest.(check bool) "infeasible" false
    (Gk_timing.feasible_on_level tight ~l_glitch:1000 ~d_mux:90)

let test_gk_timing_eq4 () =
  let s = site ~t_arrival:1000 ~clock:4000 in
  let d = { Gk_timing.d_path_a = 700; d_path_b = 900; d_mux = 90 } in
  Alcotest.(check bool) "off-level feasible" true (Gk_timing.feasible_off_level s d);
  let tight = site ~t_arrival:3300 ~clock:4000 in
  Alcotest.(check bool) "off-level infeasible" false
    (Gk_timing.feasible_off_level tight d)

let test_gk_timing_eq5_eq6 () =
  let s = site ~t_arrival:1000 ~clock:4000 in
  (match Gk_timing.trigger_window_on_level s ~l_glitch:1000 ~d_mux:90 with
  | Some (lo, hi) ->
    (* lo = max(t_j + hold - L, arr + ready) = max(3050, 1910) *)
    Alcotest.(check int) "eq5 lo" 3050 lo;
    Alcotest.(check int) "eq5 hi" (3900 - 90) hi
  | None -> Alcotest.fail "eq5 empty");
  (match Gk_timing.trigger_window_off_level s ~l_glitch:1000 ~d_mux:90 with
  | Some (lo, hi) ->
    Alcotest.(check int) "eq6 lo" (50 - 90) lo;
    Alcotest.(check int) "eq6 hi" (3900 - 1000) hi
  | None -> Alcotest.fail "eq6 empty");
  (* an over-long glitch leaves no on-level window *)
  Alcotest.(check bool) "eq5 empty when l too long" true
    (Gk_timing.trigger_window_on_level s ~l_glitch:3900 ~d_mux:90 = None)

let test_gk_timing_classify () =
  let s = site ~t_arrival:500 ~clock:4000 in
  let l = 1000 and d_mux = 90 in
  let c t = Gk_timing.classify s ~l_glitch:l ~d_mux ~t_trigger:t in
  Alcotest.(check bool) "glitchless" true (c None = Some Gk_timing.Glitchless);
  Alcotest.(check bool) "on-level" true (c (Some 3200) = Some Gk_timing.On_level);
  Alcotest.(check bool) "early" true (c (Some 1600) = Some Gk_timing.Glitch_early);
  Alcotest.(check bool) "late" true (c (Some 4000) = Some Gk_timing.Glitch_late);
  (* glitch end transition inside the window: violation *)
  Alcotest.(check bool) "violation" true (c (Some (4000 - 1000)) = None);
  (* not ready: trigger before the data reached the branch *)
  Alcotest.(check bool) "not ready" true (c (Some 1200) = None)

let eq5_trigger_always_on_level_law (arrival, pick) =
  (* Any trigger inside the Eq. 5 window classifies as on-level. *)
  let clock = 5000 in
  let s = site ~t_arrival:(500 + (arrival mod 2000)) ~clock in
  let l = 1000 and d_mux = 90 in
  match Gk_timing.trigger_window_on_level s ~l_glitch:l ~d_mux with
  | None -> true
  | Some (lo, hi) ->
    let t = lo + 1 + (abs pick mod max 1 (hi - lo - 1)) in
    Gk_timing.classify s ~l_glitch:l ~d_mux ~t_trigger:(Some t)
    = Some Gk_timing.On_level

let test_site_of_sta () =
  let n, _, _, _, f1, _, _ = pipeline () in
  let sta = Sta.analyze n ~clock_ps:3000 in
  let s = Gk_timing.site_of_sta sta f1 in
  Alcotest.(check int) "arrival" 115 s.Gk_timing.t_arrival;
  Alcotest.(check int) "t_j" 3000 s.Gk_timing.t_j;
  Alcotest.(check int) "ub" 2900 s.Gk_timing.ub

(* ----- Timing_report ----- *)

let test_timing_report () =
  (* force a negative-slack endpoint by picking a clock shorter than the
     path, then explain it (or not) with an intended glitch *)
  let n, _, _, _, _f1, _, f2 = pipeline () in
  let clock = 340 in
  (* f2 arrival 245, ub = 240 -> violated *)
  let sta = Sta.analyze n ~clock_ps:clock in
  let glitch_covering = (clock - 150, clock + 80) in
  let entries =
    Timing_report.discriminate sta ~intended:(fun ff ->
        if ff = f2 then Some glitch_covering else None)
  in
  let f2e = List.find (fun e -> e.Timing_report.ff = f2) entries in
  Alcotest.(check bool) "false violation" true
    (f2e.Timing_report.verdict = Timing_report.False_violation);
  (* same endpoint without explanation: true violation *)
  let entries2 = Timing_report.discriminate sta ~intended:(fun _ -> None) in
  let f2e2 = List.find (fun e -> e.Timing_report.ff = f2) entries2 in
  Alcotest.(check bool) "true violation" true
    (f2e2.Timing_report.verdict = Timing_report.True_violation);
  Alcotest.(check int) "true list" 1
    (List.length (Timing_report.true_violations entries2)
    - List.length (Timing_report.true_violations entries));
  (* a glitch wholly outside the window also explains the flag *)
  let early = (10, 60) in
  let entries3 =
    Timing_report.discriminate sta ~intended:(fun ff ->
        if ff = f2 then Some early else None)
  in
  let f2e3 = List.find (fun e -> e.Timing_report.ff = f2) entries3 in
  Alcotest.(check bool) "outside-window glitch is false violation" true
    (f2e3.Timing_report.verdict = Timing_report.False_violation)

let test_timing_report_clean () =
  let n, _, _, _, _, _, _ = pipeline () in
  let sta = Sta.analyze n ~clock_ps:3000 in
  let entries = Timing_report.discriminate sta ~intended:(fun _ -> None) in
  Alcotest.(check bool) "all clean" true
    (List.for_all (fun e -> e.Timing_report.verdict = Timing_report.Clean) entries)

let suites =
  [
    ( "sta.analysis",
      [
        tc "arrivals" `Quick test_sta_arrivals;
        tc "bounds/slack" `Quick test_sta_bounds_slack;
        tc "critical/clock" `Quick test_sta_critical_and_clock;
        qcheck ~count:40 "amax = longest path"
          (QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 500))
          sta_vs_paths_law;
      ] );
    ( "sta.gk_timing",
      [
        tc "eq2" `Quick test_gk_timing_eq2;
        tc "eq3" `Quick test_gk_timing_eq3;
        tc "eq4" `Quick test_gk_timing_eq4;
        tc "eq5/eq6 windows" `Quick test_gk_timing_eq5_eq6;
        tc "classify" `Quick test_gk_timing_classify;
        tc "site_of_sta" `Quick test_site_of_sta;
        qcheck "eq5 triggers are on-level" QCheck.(pair int int)
          eq5_trigger_always_on_level_law;
      ] );
    ( "sta.timing_report",
      [
        tc "discrimination" `Quick test_timing_report;
        tc "clean design" `Quick test_timing_report_clean;
      ] );
  ]
