(* Substring search helper for the integration tests. *)

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  if n = 0 then true
  else begin
    let found = ref false in
    for i = 0 to h - n do
      if (not !found) && String.sub haystack i n = needle then found := true
    done;
    !found
  end
