(* The oracle service: wire codec properties, the Oracle.of_fn batch
   transport, and end-to-end tests against an in-process gklockd —
   registry-wide verdict parity, per-client quota exhaustion inside a
   coalesced word, malformed-frame robustness and clean shutdown. *)

let tc = Alcotest.test_case

(* ----- wire codec generators ----- *)

let gen_name =
  (* arbitrary bytes, not just identifiers: the codec must not care *)
  QCheck.Gen.(string_size ~gen:(map Char.chr (0 -- 255)) (0 -- 12))

let gen_assignment = QCheck.Gen.(list_size (0 -- 8) (pair gen_name bool))

let gen_design_info =
  QCheck.Gen.(
    map
      (fun (d_name, d_inputs, d_outputs, d_cells) ->
        { Wire.d_name; d_inputs; d_outputs; d_cells })
      (quad gen_name
         (list_size (0 -- 6) gen_name)
         (list_size (0 -- 6) gen_name)
         (int_bound 1_000_000)))

let gen_error_code =
  QCheck.Gen.oneofl
    [
      Wire.Bad_frame; Wire.Bad_payload; Wire.Unsupported_version;
      Wire.Unknown_type; Wire.Unknown_design; Wire.Over_quota_queries;
      Wire.Over_quota_deadline; Wire.Bad_query; Wire.Shutting_down;
      Wire.Server_error;
    ]

let gen_msg =
  QCheck.Gen.(
    oneof
      [
        map2
          (fun client proto -> Wire.Hello { client; proto })
          gen_name (int_bound 255);
        map2
          (fun server proto -> Wire.Hello_ack { server; proto })
          gen_name (int_bound 255);
        return Wire.List_designs;
        map (fun ds -> Wire.Designs ds) (list_size (0 -- 4) gen_design_info);
        map2
          (fun design assignment -> Wire.Query { design; assignment })
          gen_name gen_assignment;
        map (fun a -> Wire.Result a) gen_assignment;
        map2
          (fun design assignments -> Wire.Query_batch { design; assignments })
          gen_name
          (list_size (0 -- 5) gen_assignment);
        map (fun rs -> Wire.Batch_result rs) (list_size (0 -- 5) gen_assignment);
        return Wire.Ping;
        return Wire.Pong;
        return Wire.Shutdown;
        return Wire.Shutdown_ack;
        map2
          (fun code detail -> Wire.Error { code; detail })
          gen_error_code gen_name;
      ])

let print_frame (id, msg) = Printf.sprintf "#%d %s" id (Wire.msg_type_name msg)

let arb_frame =
  QCheck.make ~print:print_frame
    QCheck.Gen.(pair (int_bound 0xFFFFFFF) gen_msg)

let qc_roundtrip =
  Qc.qcheck ~count:500 "wire frame round-trip" arb_frame (fun (id, msg) ->
      match Wire.decode (Wire.encode ~id msg) with
      | Ok { Wire.id = id'; msg = msg' } -> id' = id && msg' = msg
      | Error e -> QCheck.Test.fail_report (Wire.wire_error_message e))

let qc_truncated =
  (* every strict prefix of a valid frame is rejected, never mis-parsed *)
  Qc.qcheck ~count:300 "truncated frames are structured errors"
    (QCheck.make
       ~print:(fun (f, cut) -> print_frame f ^ Printf.sprintf " cut@%f" cut)
       QCheck.Gen.(pair (pair (int_bound 0xFFFFFFF) gen_msg) (float_bound_inclusive 1.0)))
    (fun ((id, msg), cut) ->
      let b = Wire.encode ~id msg in
      let n = Bytes.length b in
      let keep = min (n - 1) (int_of_float (cut *. float_of_int n)) in
      match Wire.decode (Bytes.sub b 0 keep) with
      | Ok _ -> QCheck.Test.fail_report "prefix decoded as a whole frame"
      | Error _ -> true)

let qc_mutated =
  (* flipping any byte never raises: worst case is a *different* valid
     frame (e.g. a type byte landing on another empty-payload type) *)
  Qc.qcheck ~count:500 "mutated frames never raise"
    (QCheck.make
       ~print:(fun ((f, _), _) -> print_frame f)
       QCheck.Gen.(
         pair
           (pair (pair (int_bound 0xFFFFFFF) gen_msg) (int_bound 10_000))
           (int_bound 255)))
    (fun (((id, msg), pos), v) ->
      let b = Wire.encode ~id msg in
      let pos = pos mod Bytes.length b in
      Bytes.set b pos (Char.chr ((Char.code (Bytes.get b pos) + 1 + v) land 0xff));
      match Wire.decode b with _ -> true)

let qc_garbage =
  Qc.qcheck ~count:500 "garbage bytes never raise"
    (QCheck.make
       ~print:(fun s -> Printf.sprintf "%d bytes" (String.length s))
       QCheck.Gen.(string_size ~gen:(map Char.chr (0 -- 255)) (0 -- 80)))
    (fun s ->
      match Wire.decode (Bytes.of_string s) with _ -> true)

let test_oversized () =
  let b = Wire.encode ~id:7 Wire.Ping in
  Bytes.set_int32_be b 8 (Int32.of_int (Wire.max_payload + 1));
  match Wire.decode b with
  | Error (Wire.Oversized n) ->
    Alcotest.(check int) "announced length" (Wire.max_payload + 1) n
  | Ok _ | Error _ -> Alcotest.fail "oversized frame not rejected as such"

let test_crc_mismatch () =
  let b =
    Wire.encode ~id:9
      (Wire.Query { design = "d"; assignment = [ ("a", true) ] })
  in
  let pos = Wire.header_bytes in
  Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x40));
  match Wire.decode b with
  | Error Wire.Crc_mismatch -> ()
  | Ok _ | Error _ -> Alcotest.fail "corrupt payload not caught by the CRC"

let test_unknown_type () =
  let b = Wire.encode ~id:1 Wire.Ping in
  Bytes.set b 3 '\x42';
  match Wire.decode b with
  | Error (Wire.Unknown_msg_type 0x42) -> ()
  | Ok _ | Error _ -> Alcotest.fail "unknown type byte not rejected as such"

let test_bad_magic () =
  let b = Wire.encode ~id:1 Wire.Ping in
  Bytes.set b 0 'X';
  match Wire.decode b with
  | Error Wire.Bad_magic -> ()
  | Ok _ | Error _ -> Alcotest.fail "bad magic not rejected as such"

(* ----- Oracle.of_fn ~batch (no sockets) ----- *)

let test_fn_batch_dedup () =
  let scalar_calls = ref 0 and batch_calls = ref 0 and batch_qs = ref [] in
  let eval q = [ ("y", List.exists snd q) ] in
  let o =
    Oracle.of_fn
      ~batch:(fun qs ->
        incr batch_calls;
        batch_qs := qs;
        List.map eval qs)
      (fun q ->
        incr scalar_calls;
        eval q)
  in
  let q1 = [ ("a", true); ("b", false) ] in
  let q2 = [ ("a", false); ("b", false) ] in
  let q1' = [ ("b", false); ("a", true) ] (* same effective assignment *) in
  let rs = Oracle.query_batch o [ q1; q2; q1'; q1 ] in
  Alcotest.(check int) "one wire batch" 1 !batch_calls;
  Alcotest.(check int) "no scalar fallback" 0 !scalar_calls;
  Alcotest.(check int) "misses deduplicated" 2 (List.length !batch_qs);
  Alcotest.(check int) "charged distinct queries only" 2 (Oracle.queries o);
  Alcotest.(check (list (list (pair string bool))))
    "responses in request order"
    [ [ ("y", true) ]; [ ("y", false) ]; [ ("y", true) ]; [ ("y", true) ] ]
    rs;
  (* everything is memoized now: a second batch costs nothing *)
  let _ = Oracle.query_batch o [ q1; q2 ] in
  Alcotest.(check int) "memo hit batch is free" 1 !batch_calls;
  Alcotest.(check int) "no extra charges" 2 (Oracle.queries o)

let test_fn_batch_no_memo () =
  let batch_calls = ref 0 in
  let o =
    Oracle.of_fn ~memo:false
      ~batch:(fun qs ->
        incr batch_calls;
        List.map (fun _ -> [ ("y", true) ]) qs)
      (fun _ -> [ ("y", true) ])
  in
  let q i = [ ("a", i land 1 = 1); ("b", i land 2 = 2) ] in
  let _ = Oracle.query_batch o [ q 0; q 0; q 1 ] in
  let _ = Oracle.query_batch o [ q 0 ] in
  Alcotest.(check int) "every batch hits the wire" 2 !batch_calls;
  Alcotest.(check int) "all queries charged" 4 (Oracle.queries o)

(* ----- in-process daemon harness ----- *)

let socket_path () =
  let p = Filename.temp_file "gklockd_test" ".sock" in
  Sys.remove p;
  p

let with_server ?(config = Gkd_server.default_config) designs f =
  let path = socket_path () in
  let t =
    Gkd_server.create ~config ~listen:(Frame_io.Unix_path path) designs
  in
  Gkd_server.start t;
  Fun.protect
    ~finally:(fun () ->
      Gkd_server.stop t;
      if Sys.file_exists path then Sys.remove path)
    (fun () -> f t path)

let send fd ~id msg = Frame_io.write_frame fd ~id msg

let recv fd =
  match Frame_io.read_frame fd with
  | Ok f -> f
  | Error e -> Alcotest.fail ("read_frame: " ^ Frame_io.read_error_message e)

let hello fd ~id name =
  send fd ~id (Wire.Hello { client = name; proto = Wire.protocol_version });
  match recv fd with
  | { Wire.id = id'; msg = Wire.Hello_ack _ } when id' = id -> ()
  | _ -> Alcotest.fail "handshake failed"

(* ----- registry-wide verdict parity ----- *)

let verdict_repr (o : Attack.outcome) =
  match o.Attack.verdict with
  | Attack.Key_recovered k -> "key_recovered: " ^ Key.to_string k
  | Attack.Wrong_key { key; mismatches } ->
    Printf.sprintf "wrong_key: %s (%d)" (Key.to_string key) mismatches
  | Attack.No_dip { key; mismatches } ->
    Printf.sprintf "no_dip: %s (%d)" (Key.to_string key) mismatches
  | Attack.Approx_key { key; error_rate } ->
    Printf.sprintf "approx_key: %s (%.6f)" (Key.to_string key) error_rate
  | Attack.Partial_key { recovered; unresolved } ->
    Printf.sprintf "partial_key: %s (%d unresolved)" (Key.to_string recovered)
      unresolved
  | Attack.Recovered_netlist net -> "netlist:\n" ^ Bench_format.print net
  | Attack.Gave_up -> "gave_up"
  | Attack.Skipped -> "skipped"
  | Attack.Out_of_budget r -> "out_of_budget: " ^ Budget.reason_name r

let test_registry_parity () =
  List.iter
    (fun (dname, net) ->
      let comb = fst (Combinationalize.run net) in
      let lk = Xor_lock.lock ~seed:11 comb ~n_keys:4 in
      with_server [ (dname, net) ] (fun _t path ->
          let r =
            Remote_oracle.connect ~client:"parity" ~design:dname
              (Frame_io.Unix_path path)
          in
          Fun.protect ~finally:(fun () -> Remote_oracle.close r) @@ fun () ->
          let remote = Remote_oracle.oracle r in
          List.iter
            (fun (e : Attack.entry) ->
              let go oracle =
                Attack.run ~seed:3 ~name:e.Attack.name ~locked:lk.Locked.net
                  ~key_inputs:lk.Locked.key_inputs ~oracle ()
              in
              let local = go (Oracle.of_netlist comb) in
              let viawire = go remote in
              Alcotest.(check string)
                (Printf.sprintf "%s on %s" e.Attack.name dname)
                (verdict_repr local) (verdict_repr viawire))
            Attack.registry))
    [ ("tiny", Benchmarks.tiny ()); ("s27", Benchmarks.s27 ()) ]

(* ----- per-client quota exhaustion inside a coalesced word ----- *)

let histogram_stats name =
  match Obs.Metrics.snapshot () with
  | Cjson.Obj kvs -> (
    match List.assoc_opt name kvs with
    | Some (Cjson.Obj h) -> (
      match (List.assoc_opt "count" h, List.assoc_opt "sum" h) with
      | Some (Cjson.Int c), Some (Cjson.Float s) -> (c, s)
      | _ -> Alcotest.fail (name ^ ": not a histogram"))
    | _ -> Alcotest.fail (name ^ ": not in the registry"))
  | _ -> Alcotest.fail "snapshot is not an object"

let test_quota_mid_word () =
  Obs.Metrics.reset ();
  let config =
    {
      Gkd_server.default_config with
      Gkd_server.flush_lanes = 63;
      (* long enough that all 8 pipelined queries coalesce into ONE word *)
      flush_delay_s = 0.4;
      max_queries_per_client = Some 3;
    }
  in
  with_server ~config [ ("s27", Benchmarks.s27 ()) ] (fun t path ->
      let oracle = Option.get (Gkd_server.design_oracle t "s27") in
      let pins = Oracle.input_names oracle in
      let asg i = List.mapi (fun b p -> (p, (i lsr b) land 1 = 1)) pins in
      let a = Frame_io.connect (Frame_io.Unix_path path) in
      let b = Frame_io.connect (Frame_io.Unix_path path) in
      Fun.protect
        ~finally:(fun () ->
          (try Unix.close a with Unix.Unix_error _ -> ());
          try Unix.close b with Unix.Unix_error _ -> ())
      @@ fun () ->
      hello a ~id:900 "alice";
      hello b ~id:901 "bob";
      (* pipeline scalar queries while the flusher sits on its delay:
         alice is 2 over her quota, bob exactly at his *)
      for i = 1 to 5 do
        send a ~id:i (Wire.Query { design = "s27"; assignment = asg i })
      done;
      for i = 1 to 3 do
        send b ~id:(10 + i)
          (Wire.Query { design = "s27"; assignment = asg (5 + i) })
      done;
      let collect fd n =
        List.init n (fun _ ->
            let { Wire.id; msg } = recv fd in
            (id, msg))
      in
      let ra = collect a 5 in
      let rb = collect b 3 in
      List.iter
        (fun (id, msg) ->
          match msg with
          | Wire.Result _ when id <= 3 -> ()
          | Wire.Error { code = Wire.Over_quota_queries; _ } when id > 3 -> ()
          | m ->
            Alcotest.failf "alice #%d: unexpected %s" id (Wire.msg_type_name m))
        ra;
      List.iter
        (fun (id, msg) ->
          match msg with
          | Wire.Result _ -> ()
          | m ->
            Alcotest.failf "bob #%d: unexpected %s (same-word lanes must be \
                            unaffected)" id (Wire.msg_type_name m))
        rb;
      (* alice's dropped lanes never reached the engine *)
      Alcotest.(check int) "engine evaluated only in-quota lanes" 6
        (Oracle.queries oracle);
      (* batch fill is observed once per flush, not once per query *)
      let count, sum = histogram_stats "gklockd.batch_fill" in
      Alcotest.(check int) "one flush" 1 count;
      Alcotest.(check (float 0.001)) "eight coalesced lanes" 8.0 sum)

(* ----- structured errors for unknown designs ----- *)

let test_unknown_design () =
  with_server [ ("s27", Benchmarks.s27 ()) ] (fun _t path ->
      (match
         Remote_oracle.connect ~design:"nope" (Frame_io.Unix_path path)
       with
      | exception Remote_oracle.Remote_error _ -> ()
      | _ -> Alcotest.fail "connect to a design the server does not host");
      let fd = Frame_io.connect (Frame_io.Unix_path path) in
      Fun.protect ~finally:(fun () -> Unix.close fd) @@ fun () ->
      hello fd ~id:1 "probe";
      send fd ~id:2 (Wire.Query { design = "ghost"; assignment = [] });
      match recv fd with
      | { Wire.id = 2; msg = Wire.Error { code = Wire.Unknown_design; _ } } ->
        ()
      | _ -> Alcotest.fail "expected a structured unknown_design error")

(* ----- malformed-frame fuzz: no crash, no leaked connections ----- *)

let test_malformed_fuzz () =
  with_server [ ("s27", Benchmarks.s27 ()) ] (fun t path ->
      let rng = Fuzz_seed.derive 0x6e6574 in
      for _ = 1 to 1000 do
        let fd = Frame_io.connect (Frame_io.Unix_path path) in
        let n = 1 + Random.State.int rng 64 in
        let garbage =
          Bytes.init n (fun _ -> Char.chr (Random.State.int rng 256))
        in
        (try ignore (Unix.write fd garbage 0 n)
         with Unix.Unix_error _ -> ());
        (* half-close so the server always sees EOF and can answer with
           its error frame; drain whatever it says until it hangs up *)
        (try Unix.shutdown fd Unix.SHUTDOWN_SEND
         with Unix.Unix_error _ -> ());
        let rec drain () =
          match Frame_io.read_frame fd with
          | Ok _ -> drain ()
          | Error _ -> ()
        in
        drain ();
        try Unix.close fd with Unix.Unix_error _ -> ()
      done;
      (* the daemon must still be fully alive for honest clients *)
      let r = Remote_oracle.connect (Frame_io.Unix_path path) in
      let rtt = Remote_oracle.ping r in
      Alcotest.(check bool) "daemon answers after the storm" true (rtt >= 0.0);
      let o = Remote_oracle.oracle r in
      let pins =
        match Remote_oracle.designs r with
        | [ d ] -> d.Wire.d_inputs
        | _ -> Alcotest.fail "expected one hosted design"
      in
      let out = Oracle.query o (List.map (fun p -> (p, true)) pins) in
      Alcotest.(check bool) "and still evaluates" true (out <> []);
      Remote_oracle.close r;
      let rec settle n =
        if Gkd_server.live_connections t > 0 && n > 0 then (
          Unix.sleepf 0.01;
          settle (n - 1))
      in
      settle 300;
      Alcotest.(check int) "no leaked connections" 0
        (Gkd_server.live_connections t))

(* ----- metrics dump + clean shutdown ----- *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let test_metrics_dump_and_shutdown () =
  let mfile = Filename.temp_file "gklockd_metrics" ".json" in
  let config =
    {
      Gkd_server.default_config with
      Gkd_server.flush_delay_s = 0.005;
      metrics_out = Some mfile;
      (* longer than the test: proves the final dump happens on shutdown *)
      metrics_interval_s = 3600.0;
    }
  in
  let path = socket_path () in
  let t =
    Gkd_server.create ~config
      ~listen:(Frame_io.Unix_path path)
      [ ("s27", Benchmarks.s27 ()) ]
  in
  Gkd_server.start t;
  let r = Remote_oracle.connect ~client:"dumper" (Frame_io.Unix_path path) in
  let o = Remote_oracle.oracle r in
  let pins =
    match Remote_oracle.designs r with
    | [ d ] -> d.Wire.d_inputs
    | _ -> Alcotest.fail "expected one hosted design"
  in
  let asg i = List.mapi (fun b p -> (p, (i lsr b) land 1 = 1)) pins in
  ignore (Oracle.query o (asg 1));
  ignore (Oracle.query_batch o [ asg 2; asg 3; asg 4 ]);
  (* shutdown via the wire, exactly like an external client would *)
  Remote_oracle.shutdown_server r;
  Gkd_server.wait t;
  Alcotest.(check int) "all connections closed" 0 (Gkd_server.live_connections t);
  Alcotest.(check bool) "socket file removed" false (Sys.file_exists path);
  (match Frame_io.connect (Frame_io.Unix_path path) with
  | exception Unix.Unix_error _ -> ()
  | fd ->
    Unix.close fd;
    Alcotest.fail "connect succeeded after shutdown");
  let dump = read_file mfile in
  Sys.remove mfile;
  (match Cjson.of_string dump with
  | Ok (Cjson.Obj kvs) ->
    List.iter
      (fun key ->
        Alcotest.(check bool)
          (key ^ " in the shutdown dump")
          true
          (List.mem_assoc key kvs))
      [
        "gklockd.batch_fill"; "gklockd.queries"; "gklockd.queue_depth";
        "gklockd.connections"; "oracle.memo_evictions"; "oracle.memo_hits";
      ]
  | Ok _ -> Alcotest.fail "metrics dump is not a JSON object"
  | Error e -> Alcotest.fail ("metrics dump is not valid JSON: " ^ e))

let suites =
  [
    ( "net-wire",
      [
        qc_roundtrip; qc_truncated; qc_mutated; qc_garbage;
        tc "oversized length rejected" `Quick test_oversized;
        tc "payload CRC checked" `Quick test_crc_mismatch;
        tc "unknown type byte rejected" `Quick test_unknown_type;
        tc "bad magic rejected" `Quick test_bad_magic;
      ] );
    ( "net-oracle",
      [
        tc "of_fn batch dedups and memoizes" `Quick test_fn_batch_dedup;
        tc "of_fn batch without memo" `Quick test_fn_batch_no_memo;
      ] );
    ( "net-daemon",
      [
        tc "registry verdict parity over the wire" `Slow test_registry_parity;
        tc "quota exhaustion inside a coalesced word" `Slow
          test_quota_mid_word;
        tc "unknown design is a structured error" `Quick test_unknown_design;
        tc "1k malformed frames: alive, nothing leaked" `Slow
          test_malformed_fuzz;
        tc "metrics dump and clean shutdown" `Quick
          test_metrics_dump_and_shutdown;
      ] );
  ]
