(* The oracle service: wire codec properties, the Oracle.of_fn batch
   transport, and end-to-end tests against an in-process gklockd —
   registry-wide verdict parity, per-client quota exhaustion inside a
   coalesced word, malformed-frame robustness and clean shutdown. *)

let tc = Alcotest.test_case

(* ----- wire codec generators ----- *)

let gen_name =
  (* arbitrary bytes, not just identifiers: the codec must not care *)
  QCheck.Gen.(string_size ~gen:(map Char.chr (0 -- 255)) (0 -- 12))

let gen_assignment = QCheck.Gen.(list_size (0 -- 8) (pair gen_name bool))

let gen_design_info =
  QCheck.Gen.(
    map
      (fun (d_name, d_inputs, d_outputs, d_cells) ->
        { Wire.d_name; d_inputs; d_outputs; d_cells })
      (quad gen_name
         (list_size (0 -- 6) gen_name)
         (list_size (0 -- 6) gen_name)
         (int_bound 1_000_000)))

let gen_error_code =
  QCheck.Gen.oneofl
    [
      Wire.Bad_frame; Wire.Bad_payload; Wire.Unsupported_version;
      Wire.Unknown_type; Wire.Unknown_design; Wire.Over_quota_queries;
      Wire.Over_quota_deadline; Wire.Bad_query; Wire.Not_permitted;
      Wire.Shutting_down; Wire.Server_error;
    ]

let gen_msg =
  QCheck.Gen.(
    oneof
      [
        map2
          (fun client proto -> Wire.Hello { client; proto })
          gen_name (int_bound 255);
        map2
          (fun server proto -> Wire.Hello_ack { server; proto })
          gen_name (int_bound 255);
        return Wire.List_designs;
        map (fun ds -> Wire.Designs ds) (list_size (0 -- 4) gen_design_info);
        map2
          (fun design assignment -> Wire.Query { design; assignment })
          gen_name gen_assignment;
        map (fun a -> Wire.Result a) gen_assignment;
        map2
          (fun design assignments -> Wire.Query_batch { design; assignments })
          gen_name
          (list_size (0 -- 5) gen_assignment);
        map (fun rs -> Wire.Batch_result rs) (list_size (0 -- 5) gen_assignment);
        return Wire.Ping;
        return Wire.Pong;
        return Wire.Shutdown;
        return Wire.Shutdown_ack;
        map2
          (fun code detail -> Wire.Error { code; detail })
          gen_error_code gen_name;
      ])

let print_frame (id, msg) = Printf.sprintf "#%d %s" id (Wire.msg_type_name msg)

let arb_frame =
  QCheck.make ~print:print_frame
    QCheck.Gen.(pair (int_bound 0xFFFFFFF) gen_msg)

let qc_roundtrip =
  Qc.qcheck ~count:500 "wire frame round-trip" arb_frame (fun (id, msg) ->
      match Wire.decode (Wire.encode ~id msg) with
      | Ok { Wire.id = id'; msg = msg' } -> id' = id && msg' = msg
      | Error e -> QCheck.Test.fail_report (Wire.wire_error_message e))

let qc_truncated =
  (* every strict prefix of a valid frame is rejected, never mis-parsed *)
  Qc.qcheck ~count:300 "truncated frames are structured errors"
    (QCheck.make
       ~print:(fun (f, cut) -> print_frame f ^ Printf.sprintf " cut@%f" cut)
       QCheck.Gen.(pair (pair (int_bound 0xFFFFFFF) gen_msg) (float_bound_inclusive 1.0)))
    (fun ((id, msg), cut) ->
      let b = Wire.encode ~id msg in
      let n = Bytes.length b in
      let keep = min (n - 1) (int_of_float (cut *. float_of_int n)) in
      match Wire.decode (Bytes.sub b 0 keep) with
      | Ok _ -> QCheck.Test.fail_report "prefix decoded as a whole frame"
      | Error _ -> true)

let qc_mutated =
  (* flipping any byte never raises: worst case is a *different* valid
     frame (e.g. a type byte landing on another empty-payload type) *)
  Qc.qcheck ~count:500 "mutated frames never raise"
    (QCheck.make
       ~print:(fun ((f, _), _) -> print_frame f)
       QCheck.Gen.(
         pair
           (pair (pair (int_bound 0xFFFFFFF) gen_msg) (int_bound 10_000))
           (int_bound 255)))
    (fun (((id, msg), pos), v) ->
      let b = Wire.encode ~id msg in
      let pos = pos mod Bytes.length b in
      Bytes.set b pos (Char.chr ((Char.code (Bytes.get b pos) + 1 + v) land 0xff));
      match Wire.decode b with _ -> true)

let qc_garbage =
  Qc.qcheck ~count:500 "garbage bytes never raise"
    (QCheck.make
       ~print:(fun s -> Printf.sprintf "%d bytes" (String.length s))
       QCheck.Gen.(string_size ~gen:(map Char.chr (0 -- 255)) (0 -- 80)))
    (fun s ->
      match Wire.decode (Bytes.of_string s) with _ -> true)

(* ----- the exact max_payload boundary ----- *)

(* A [Batch_result] with one assignment whose pin names are tuned so the
   encoded payload is exactly [bytes]: 4 (result count) + 2 (pin count)
   + per pin a 2-byte name length, the name, and a bool byte.  Pin names
   are u16-length on the wire, so the bulk is made of 997-byte names
   (1000 wire bytes each) and one final name absorbs the remainder. *)
let batch_result_of_bytes bytes =
  let body = bytes - 6 in
  assert (body >= 2003);
  let full = (body / 1000) - 1 in
  let rem = body - (full * 1000) in
  let pins =
    List.init full (fun i ->
        (Printf.sprintf "%06d%s" i (String.make 991 'p'), i land 1 = 1))
  in
  Wire.Batch_result [ pins @ [ (String.make (rem - 3) 'q', true) ] ]

let qc_payload_boundary =
  (* the cap is exact on both sides of the codec: a payload of
     max_payload - k (k >= 0) encodes and round-trips, max_payload + k
     (k > 0) raises — no off-by-one between encode and decode_header *)
  Qc.qcheck ~count:24 "payload cap is exact at max_payload"
    (QCheck.make ~print:string_of_int QCheck.Gen.(int_range (-16) 16))
    (fun delta ->
      let target = Wire.max_payload + delta in
      let msg = batch_result_of_bytes target in
      if delta <= 0 then (
        let b = Wire.encode ~id:5 msg in
        if Bytes.length b <> Wire.header_bytes + target then
          QCheck.Test.fail_report "encoded payload size is not as constructed"
        else
          match Wire.decode b with
          | Ok { Wire.id = 5; msg = msg' } -> msg' = msg
          | Ok _ -> QCheck.Test.fail_report "round-trip changed the id"
          | Error e -> QCheck.Test.fail_report (Wire.wire_error_message e))
      else
        match Wire.encode ~id:5 msg with
        | _ -> QCheck.Test.fail_report "payload above the cap encoded"
        | exception Invalid_argument _ -> true)

let test_oversized () =
  let b = Wire.encode ~id:7 Wire.Ping in
  Bytes.set_int32_be b 8 (Int32.of_int (Wire.max_payload + 1));
  match Wire.decode b with
  | Error (Wire.Oversized n) ->
    Alcotest.(check int) "announced length" (Wire.max_payload + 1) n
  | Ok _ | Error _ -> Alcotest.fail "oversized frame not rejected as such"

let test_crc_mismatch () =
  let b =
    Wire.encode ~id:9
      (Wire.Query { design = "d"; assignment = [ ("a", true) ] })
  in
  let pos = Wire.header_bytes in
  Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x40));
  match Wire.decode b with
  | Error Wire.Crc_mismatch -> ()
  | Ok _ | Error _ -> Alcotest.fail "corrupt payload not caught by the CRC"

let test_unknown_type () =
  let b = Wire.encode ~id:1 Wire.Ping in
  Bytes.set b 3 '\x42';
  match Wire.decode b with
  | Error (Wire.Unknown_msg_type 0x42) -> ()
  | Ok _ | Error _ -> Alcotest.fail "unknown type byte not rejected as such"

let test_bad_magic () =
  let b = Wire.encode ~id:1 Wire.Ping in
  Bytes.set b 0 'X';
  match Wire.decode b with
  | Error Wire.Bad_magic -> ()
  | Ok _ | Error _ -> Alcotest.fail "bad magic not rejected as such"

(* ----- Oracle.of_fn ~batch (no sockets) ----- *)

let test_fn_batch_dedup () =
  let scalar_calls = ref 0 and batch_calls = ref 0 and batch_qs = ref [] in
  let eval q = [ ("y", List.exists snd q) ] in
  let o =
    Oracle.of_fn
      ~batch:(fun qs ->
        incr batch_calls;
        batch_qs := qs;
        List.map eval qs)
      (fun q ->
        incr scalar_calls;
        eval q)
  in
  let q1 = [ ("a", true); ("b", false) ] in
  let q2 = [ ("a", false); ("b", false) ] in
  let q1' = [ ("b", false); ("a", true) ] (* same effective assignment *) in
  let rs = Oracle.query_batch o [ q1; q2; q1'; q1 ] in
  Alcotest.(check int) "one wire batch" 1 !batch_calls;
  Alcotest.(check int) "no scalar fallback" 0 !scalar_calls;
  Alcotest.(check int) "misses deduplicated" 2 (List.length !batch_qs);
  Alcotest.(check int) "charged distinct queries only" 2 (Oracle.queries o);
  Alcotest.(check (list (list (pair string bool))))
    "responses in request order"
    [ [ ("y", true) ]; [ ("y", false) ]; [ ("y", true) ]; [ ("y", true) ] ]
    rs;
  (* everything is memoized now: a second batch costs nothing *)
  let _ = Oracle.query_batch o [ q1; q2 ] in
  Alcotest.(check int) "memo hit batch is free" 1 !batch_calls;
  Alcotest.(check int) "no extra charges" 2 (Oracle.queries o)

let test_fn_batch_no_memo () =
  let batch_calls = ref 0 in
  let o =
    Oracle.of_fn ~memo:false
      ~batch:(fun qs ->
        incr batch_calls;
        List.map (fun _ -> [ ("y", true) ]) qs)
      (fun _ -> [ ("y", true) ])
  in
  let q i = [ ("a", i land 1 = 1); ("b", i land 2 = 2) ] in
  let _ = Oracle.query_batch o [ q 0; q 0; q 1 ] in
  let _ = Oracle.query_batch o [ q 0 ] in
  Alcotest.(check int) "every batch hits the wire" 2 !batch_calls;
  Alcotest.(check int) "all queries charged" 4 (Oracle.queries o)

(* ----- in-process daemon harness ----- *)

let socket_path () =
  let p = Filename.temp_file "gklockd_test" ".sock" in
  Sys.remove p;
  p

let with_server ?(config = Gkd_server.default_config) designs f =
  let path = socket_path () in
  let t =
    Gkd_server.create ~config ~listen:(Frame_io.Unix_path path) designs
  in
  Gkd_server.start t;
  Fun.protect
    ~finally:(fun () ->
      Gkd_server.stop t;
      if Sys.file_exists path then Sys.remove path)
    (fun () -> f t path)

let send fd ~id msg = Frame_io.write_frame fd ~id msg

let recv fd =
  match Frame_io.read_frame fd with
  | Ok f -> f
  | Error e -> Alcotest.fail ("read_frame: " ^ Frame_io.read_error_message e)

let hello fd ~id name =
  send fd ~id (Wire.Hello { client = name; proto = Wire.protocol_version });
  match recv fd with
  | { Wire.id = id'; msg = Wire.Hello_ack _ } when id' = id -> ()
  | _ -> Alcotest.fail "handshake failed"

(* ----- registry-wide verdict parity ----- *)

let verdict_repr (o : Attack.outcome) =
  match o.Attack.verdict with
  | Attack.Key_recovered k -> "key_recovered: " ^ Key.to_string k
  | Attack.Wrong_key { key; mismatches } ->
    Printf.sprintf "wrong_key: %s (%d)" (Key.to_string key) mismatches
  | Attack.No_dip { key; mismatches } ->
    Printf.sprintf "no_dip: %s (%d)" (Key.to_string key) mismatches
  | Attack.Approx_key { key; error_rate } ->
    Printf.sprintf "approx_key: %s (%.6f)" (Key.to_string key) error_rate
  | Attack.Partial_key { recovered; unresolved } ->
    Printf.sprintf "partial_key: %s (%d unresolved)" (Key.to_string recovered)
      unresolved
  | Attack.Recovered_netlist net -> "netlist:\n" ^ Bench_format.print net
  | Attack.Gave_up r -> "gave_up:" ^ Attack.gave_up_reason_name r
  | Attack.Skipped -> "skipped"
  | Attack.Out_of_budget r -> "out_of_budget: " ^ Budget.reason_name r

let test_registry_parity () =
  List.iter
    (fun (dname, net) ->
      let comb = fst (Combinationalize.run net) in
      let lk = Xor_lock.lock ~seed:11 comb ~n_keys:4 in
      with_server [ (dname, net) ] (fun _t path ->
          let r =
            Remote_oracle.connect ~client:"parity" ~design:dname
              (Frame_io.Unix_path path)
          in
          Fun.protect ~finally:(fun () -> Remote_oracle.close r) @@ fun () ->
          let remote = Remote_oracle.oracle r in
          List.iter
            (fun (e : Attack.entry) ->
              let go oracle =
                Attack.run ~seed:3 ~name:e.Attack.name ~locked:lk.Locked.net
                  ~key_inputs:lk.Locked.key_inputs ~oracle ()
              in
              let local = go (Oracle.of_netlist comb) in
              let viawire = go remote in
              Alcotest.(check string)
                (Printf.sprintf "%s on %s" e.Attack.name dname)
                (verdict_repr local) (verdict_repr viawire))
            Attack.registry))
    [ ("tiny", Benchmarks.tiny ()); ("s27", Benchmarks.s27 ()) ]

(* ----- per-client quota exhaustion inside a coalesced word ----- *)

let histogram_stats name =
  match Obs.Metrics.snapshot () with
  | Cjson.Obj kvs -> (
    match List.assoc_opt name kvs with
    | Some (Cjson.Obj h) -> (
      match (List.assoc_opt "count" h, List.assoc_opt "sum" h) with
      | Some (Cjson.Int c), Some (Cjson.Float s) -> (c, s)
      | _ -> Alcotest.fail (name ^ ": not a histogram"))
    | _ -> Alcotest.fail (name ^ ": not in the registry"))
  | _ -> Alcotest.fail "snapshot is not an object"

let test_quota_mid_word () =
  Obs.Metrics.reset ();
  let config =
    {
      Gkd_server.default_config with
      Gkd_server.flush_lanes = 63;
      (* long enough that all 8 pipelined queries coalesce into ONE word *)
      flush_delay_s = 0.4;
      max_queries_per_client = Some 3;
    }
  in
  with_server ~config [ ("s27", Benchmarks.s27 ()) ] (fun t path ->
      let oracle = Option.get (Gkd_server.design_oracle t "s27") in
      let pins = Oracle.input_names oracle in
      let asg i = List.mapi (fun b p -> (p, (i lsr b) land 1 = 1)) pins in
      let a = Frame_io.connect (Frame_io.Unix_path path) in
      let b = Frame_io.connect (Frame_io.Unix_path path) in
      Fun.protect
        ~finally:(fun () ->
          (try Unix.close a with Unix.Unix_error _ -> ());
          try Unix.close b with Unix.Unix_error _ -> ())
      @@ fun () ->
      hello a ~id:900 "alice";
      hello b ~id:901 "bob";
      (* pipeline scalar queries while the flusher sits on its delay:
         alice is 2 over her quota, bob exactly at his *)
      for i = 1 to 5 do
        send a ~id:i (Wire.Query { design = "s27"; assignment = asg i })
      done;
      for i = 1 to 3 do
        send b ~id:(10 + i)
          (Wire.Query { design = "s27"; assignment = asg (5 + i) })
      done;
      let collect fd n =
        List.init n (fun _ ->
            let { Wire.id; msg } = recv fd in
            (id, msg))
      in
      let ra = collect a 5 in
      let rb = collect b 3 in
      List.iter
        (fun (id, msg) ->
          match msg with
          | Wire.Result _ when id <= 3 -> ()
          | Wire.Error { code = Wire.Over_quota_queries; _ } when id > 3 -> ()
          | m ->
            Alcotest.failf "alice #%d: unexpected %s" id (Wire.msg_type_name m))
        ra;
      List.iter
        (fun (id, msg) ->
          match msg with
          | Wire.Result _ -> ()
          | m ->
            Alcotest.failf "bob #%d: unexpected %s (same-word lanes must be \
                            unaffected)" id (Wire.msg_type_name m))
        rb;
      (* alice's dropped lanes never reached the engine *)
      Alcotest.(check int) "engine evaluated only in-quota lanes" 6
        (Oracle.queries oracle);
      (* batch fill is observed once per flush, not once per query *)
      let count, sum = histogram_stats "gklockd.batch_fill" in
      Alcotest.(check int) "one flush" 1 count;
      Alcotest.(check (float 0.001)) "eight coalesced lanes" 8.0 sum)

(* ----- structured errors for unknown designs ----- *)

let test_unknown_design () =
  with_server [ ("s27", Benchmarks.s27 ()) ] (fun _t path ->
      (match
         Remote_oracle.connect ~design:"nope" (Frame_io.Unix_path path)
       with
      | exception Remote_oracle.Remote_error _ -> ()
      | _ -> Alcotest.fail "connect to a design the server does not host");
      let fd = Frame_io.connect (Frame_io.Unix_path path) in
      Fun.protect ~finally:(fun () -> Unix.close fd) @@ fun () ->
      hello fd ~id:1 "probe";
      send fd ~id:2 (Wire.Query { design = "ghost"; assignment = [] });
      match recv fd with
      | { Wire.id = 2; msg = Wire.Error { code = Wire.Unknown_design; _ } } ->
        ()
      | _ -> Alcotest.fail "expected a structured unknown_design error")

(* ----- malformed-frame fuzz: no crash, no leaked connections ----- *)

let test_malformed_fuzz () =
  with_server [ ("s27", Benchmarks.s27 ()) ] (fun t path ->
      let rng = Fuzz_seed.derive 0x6e6574 in
      for _ = 1 to 1000 do
        let fd = Frame_io.connect (Frame_io.Unix_path path) in
        let n = 1 + Random.State.int rng 64 in
        let garbage =
          Bytes.init n (fun _ -> Char.chr (Random.State.int rng 256))
        in
        (try ignore (Unix.write fd garbage 0 n)
         with Unix.Unix_error _ -> ());
        (* half-close so the server always sees EOF and can answer with
           its error frame; drain whatever it says until it hangs up *)
        (try Unix.shutdown fd Unix.SHUTDOWN_SEND
         with Unix.Unix_error _ -> ());
        let rec drain () =
          match Frame_io.read_frame fd with
          | Ok _ -> drain ()
          | Error _ -> ()
        in
        drain ();
        try Unix.close fd with Unix.Unix_error _ -> ()
      done;
      (* the daemon must still be fully alive for honest clients *)
      let r = Remote_oracle.connect (Frame_io.Unix_path path) in
      let rtt = Remote_oracle.ping r in
      Alcotest.(check bool) "daemon answers after the storm" true (rtt >= 0.0);
      let o = Remote_oracle.oracle r in
      let pins =
        match Remote_oracle.designs r with
        | [ d ] -> d.Wire.d_inputs
        | _ -> Alcotest.fail "expected one hosted design"
      in
      let out = Oracle.query o (List.map (fun p -> (p, true)) pins) in
      Alcotest.(check bool) "and still evaluates" true (out <> []);
      Remote_oracle.close r;
      let rec settle n =
        if Gkd_server.live_connections t > 0 && n > 0 then (
          Unix.sleepf 0.01;
          settle (n - 1))
      in
      settle 300;
      Alcotest.(check int) "no leaked connections" 0
        (Gkd_server.live_connections t))

(* ----- concurrent explicit batches on one shared oracle ----- *)

(* Query_batch frames evaluate on reader threads while the flusher
   evaluates coalesced scalar words on the *same* Oracle.t: without the
   per-design oracle mutex this races on the engine scratch and the
   memo table, corrupting answers (or crashing).  Three batch clients
   plus one scalar client hammer s27 and every reply is checked against
   a local oracle. *)
let test_concurrent_batches () =
  let net = Benchmarks.s27 () in
  let comb = fst (Combinationalize.run net) in
  let local = Oracle.of_netlist comb in
  let pins = Oracle.input_names local in
  let asg i = List.mapi (fun b p -> (p, (i lsr b) land 1 = 1)) pins in
  let expected = Array.init 128 (fun i -> Oracle.query local (asg i)) in
  with_server [ ("s27", net) ] (fun _t path ->
      let errors = ref [] in
      let emu = Mutex.create () in
      let report e =
        Mutex.lock emu;
        errors := Printexc.to_string e :: !errors;
        Mutex.unlock emu
      in
      let with_conn name f =
        try
          let fd = Frame_io.connect (Frame_io.Unix_path path) in
          Fun.protect
            ~finally:(fun () ->
              try Unix.close fd with Unix.Unix_error _ -> ())
            (fun () ->
              hello fd ~id:0 name;
              f fd)
        with e -> report e
      in
      let batcher k () =
        with_conn (Printf.sprintf "batch%d" k) @@ fun fd ->
        for round = 1 to 20 do
          let idxs =
            List.init 16 (fun j -> ((k * 37) + (round * 11) + (j * 5)) mod 128)
          in
          send fd ~id:round
            (Wire.Query_batch
               { design = "s27"; assignments = List.map asg idxs });
          match recv fd with
          | { Wire.id; msg = Wire.Batch_result rs } when id = round ->
            List.iter2
              (fun i r ->
                if r <> expected.(i) then
                  failwith
                    (Printf.sprintf "batcher %d: wrong result for input %d" k
                       i))
              idxs rs
          | { Wire.msg; _ } ->
            failwith
              (Printf.sprintf "batcher %d: unexpected %s" k
                 (Wire.msg_type_name msg))
        done
      in
      let scalars () =
        with_conn "scalar" @@ fun fd ->
        for round = 1 to 40 do
          let i = (round * 29) mod 128 in
          send fd ~id:round (Wire.Query { design = "s27"; assignment = asg i });
          match recv fd with
          | { Wire.id; msg = Wire.Result r } when id = round ->
            if r <> expected.(i) then
              failwith (Printf.sprintf "scalar: wrong result for input %d" i)
          | { Wire.msg; _ } ->
            failwith ("scalar: unexpected " ^ Wire.msg_type_name msg)
        done
      in
      let ths =
        Thread.create scalars ()
        :: List.init 3 (fun k -> Thread.create (batcher k) ())
      in
      List.iter Thread.join ths;
      match !errors with
      | [] -> ()
      | es -> Alcotest.fail (String.concat "; " es))

(* ----- oversized replies degrade to structured errors ----- *)

let fat_netlist n_outs =
  let n = Netlist.create "fat" in
  let a = Netlist.add_input n "a" in
  for i = 0 to n_outs - 1 do
    let g = Netlist.add_gate n Cell.Buf [| a |] in
    Netlist.add_output n (Printf.sprintf "out_%04d_%s" i (String.make 58 'o')) g
  done;
  n

let contains hay needle =
  let n = String.length hay and m = String.length needle in
  let rec go i = i + m <= n && (String.sub hay i m = needle || go (i + 1)) in
  go 0

let test_oversized_reply () =
  (* 2000 outputs x ~70 wire bytes each ≈ 140 kB per result: a 130-query
     batch fits the request cap easily while its single Batch_result
     would be ~18 MB > max_payload.  The reader thread must answer with
     a structured error and keep serving, not die mid-write. *)
  with_server [ ("fat", fat_netlist 2000) ] (fun _t path ->
      let fd = Frame_io.connect (Frame_io.Unix_path path) in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      @@ fun () ->
      hello fd ~id:1 "blob";
      let assignments = List.init 130 (fun i -> [ ("a", i land 1 = 1) ]) in
      send fd ~id:2 (Wire.Query_batch { design = "fat"; assignments });
      (match recv fd with
      | { Wire.id = 2; msg = Wire.Error { code = Wire.Server_error; detail } }
        ->
        Alcotest.(check bool)
          "detail says to split the batch" true
          (contains detail "frame cap")
      | { Wire.msg; _ } ->
        Alcotest.failf "expected a structured error, got %s"
          (Wire.msg_type_name msg));
      (* a smaller batch still fits and works *)
      let small = List.init 4 (fun i -> [ ("a", i land 1 = 1) ]) in
      send fd ~id:3 (Wire.Query_batch { design = "fat"; assignments = small });
      (match recv fd with
      | { Wire.id = 3; msg = Wire.Batch_result rs } ->
        Alcotest.(check int) "batch answered" 4 (List.length rs)
      | { Wire.msg; _ } ->
        Alcotest.failf "connection unusable after an oversized reply: %s"
          (Wire.msg_type_name msg));
      send fd ~id:4 Wire.Ping;
      match recv fd with
      | { Wire.id = 4; msg = Wire.Pong } -> ()
      | _ -> Alcotest.fail "no pong after an oversized reply")

(* ----- client-side chunk sizing under an extreme reply/query ratio ----- *)

let wide_reply_netlist () =
  (* 8 two-char inputs, 1024 outputs with 200-char names: each reply is
     ~203 bytes per output pin, so the reply/query byte ratio is ~5000. *)
  let n = Netlist.create "wide" in
  let ins =
    Array.init 8 (fun i -> Netlist.add_input n (Printf.sprintf "i%d" i))
  in
  for o = 0 to 1023 do
    let g = Netlist.add_gate n Cell.Buf [| ins.(o mod 8) |] in
    Netlist.add_output n
      (Printf.sprintf "o_%04d_%s" o (String.make 193 'w'))
      g
  done;
  n

let test_chunk_sizing_wide_reply () =
  (* Regression for the chunk-budget floor: [Remote_oracle.batch_chunks]
     used to floor its per-chunk request budget at 4096 bytes, which on
     this design packs ~97 queries per chunk and provokes a ~20 MB
     Batch_result — past [Wire.max_payload], so the server answered with
     a structured error and the whole batch died.  With the floor at 1
     the ratio-derived budget holds (~40 queries per chunk, ~8 MB
     replies) and the batch round-trips. *)
  let net = wide_reply_netlist () in
  let local = Oracle.of_netlist net in
  let pins = Oracle.input_names local in
  let asg i = List.mapi (fun b p -> (p, (i lsr b) land 1 = 1)) pins in
  let queries = List.init 128 asg in
  let expected = List.map (Oracle.query local) queries in
  with_server [ ("wide", net) ] (fun _t path ->
      let r =
        Remote_oracle.connect ~client:"wide" ~design:"wide"
          (Frame_io.Unix_path path)
      in
      Fun.protect ~finally:(fun () -> Remote_oracle.close r) @@ fun () ->
      let got = Oracle.query_batch (Remote_oracle.oracle r) queries in
      Alcotest.(check int) "every query answered" 128 (List.length got);
      List.iteri
        (fun i (want, have) ->
          if want <> have then
            Alcotest.failf "query %d: remote result differs from local" i)
        (List.combine expected got))

(* ----- tcp shutdown gating ----- *)

let test_tcp_shutdown_gating () =
  (* default config: a shutdown frame over tcp is refused with a
     structured error and the daemon keeps serving *)
  let t =
    Gkd_server.create ~config:Gkd_server.default_config
      ~listen:(Frame_io.Tcp ("127.0.0.1", 0))
      [ ("s27", Benchmarks.s27 ()) ]
  in
  Gkd_server.start t;
  Fun.protect ~finally:(fun () -> Gkd_server.stop t) (fun () ->
      let fd = Frame_io.connect (Gkd_server.address t) in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      @@ fun () ->
      hello fd ~id:1 "anyone";
      send fd ~id:2 Wire.Shutdown;
      (match recv fd with
      | { Wire.id = 2; msg = Wire.Error { code = Wire.Not_permitted; _ } } ->
        ()
      | { Wire.msg; _ } ->
        Alcotest.failf "expected not_permitted over tcp, got %s"
          (Wire.msg_type_name msg));
      send fd ~id:3 Wire.Ping;
      match recv fd with
      | { Wire.id = 3; msg = Wire.Pong } -> ()
      | _ -> Alcotest.fail "daemon died after refusing a tcp shutdown");
  (* opted in: the same frame shuts the daemon down cleanly *)
  let config =
    { Gkd_server.default_config with Gkd_server.allow_tcp_shutdown = true }
  in
  let t2 =
    Gkd_server.create ~config
      ~listen:(Frame_io.Tcp ("127.0.0.1", 0))
      [ ("s27", Benchmarks.s27 ()) ]
  in
  Gkd_server.start t2;
  let fd2 = Frame_io.connect (Gkd_server.address t2) in
  hello fd2 ~id:1 "admin";
  send fd2 ~id:2 Wire.Shutdown;
  (match recv fd2 with
  | { Wire.id = 2; msg = Wire.Shutdown_ack } -> ()
  | { Wire.msg; _ } ->
    Alcotest.failf "expected shutdown_ack with allow_tcp_shutdown, got %s"
      (Wire.msg_type_name msg));
  (try Unix.close fd2 with Unix.Unix_error _ -> ());
  Gkd_server.wait t2;
  Alcotest.(check int) "all connections closed" 0
    (Gkd_server.live_connections t2)

(* ----- per-client metrics counters are capped ----- *)

let test_client_counter_cap () =
  with_server [ ("s27", Benchmarks.s27 ()) ] (fun t path ->
      let fd = Frame_io.connect (Frame_io.Unix_path path) in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      @@ fun () ->
      (* 300 re-Hellos under distinct client-chosen names: only the
         server's cap (256) may land in the process-global registry, the
         rest share gklockd.client_queries.other *)
      for i = 1 to 300 do
        hello fd ~id:i (Printf.sprintf "cap%03d" i)
      done;
      let prefixed =
        match Obs.Metrics.snapshot () with
        | Cjson.Obj kvs ->
          List.length
            (List.filter
               (fun (k, _) ->
                 String.starts_with ~prefix:"gklockd.client_queries.cap" k)
               kvs)
        | _ -> Alcotest.fail "snapshot is not an object"
      in
      Alcotest.(check int) "distinct per-client counters capped" 256 prefixed;
      (* an over-cap client is still served, just counted as "other" *)
      let oracle = Option.get (Gkd_server.design_oracle t "s27") in
      let pins = Oracle.input_names oracle in
      send fd ~id:1000
        (Wire.Query
           { design = "s27"; assignment = List.map (fun p -> (p, true)) pins });
      match recv fd with
      | { Wire.id = 1000; msg = Wire.Result _ } -> ()
      | { Wire.msg; _ } ->
        Alcotest.failf "over-cap client not served: %s"
          (Wire.msg_type_name msg))

(* ----- metrics dump + clean shutdown ----- *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let test_metrics_dump_and_shutdown () =
  let mfile = Filename.temp_file "gklockd_metrics" ".json" in
  let config =
    {
      Gkd_server.default_config with
      Gkd_server.flush_delay_s = 0.005;
      metrics_out = Some mfile;
      (* longer than the test: proves the final dump happens on shutdown *)
      metrics_interval_s = 3600.0;
    }
  in
  let path = socket_path () in
  let t =
    Gkd_server.create ~config
      ~listen:(Frame_io.Unix_path path)
      [ ("s27", Benchmarks.s27 ()) ]
  in
  Gkd_server.start t;
  let r = Remote_oracle.connect ~client:"dumper" (Frame_io.Unix_path path) in
  let o = Remote_oracle.oracle r in
  let pins =
    match Remote_oracle.designs r with
    | [ d ] -> d.Wire.d_inputs
    | _ -> Alcotest.fail "expected one hosted design"
  in
  let asg i = List.mapi (fun b p -> (p, (i lsr b) land 1 = 1)) pins in
  ignore (Oracle.query o (asg 1));
  ignore (Oracle.query_batch o [ asg 2; asg 3; asg 4 ]);
  (* shutdown via the wire, exactly like an external client would *)
  Remote_oracle.shutdown_server r;
  Gkd_server.wait t;
  Alcotest.(check int) "all connections closed" 0 (Gkd_server.live_connections t);
  Alcotest.(check bool) "socket file removed" false (Sys.file_exists path);
  (match Frame_io.connect (Frame_io.Unix_path path) with
  | exception Unix.Unix_error _ -> ()
  | fd ->
    Unix.close fd;
    Alcotest.fail "connect succeeded after shutdown");
  let dump = read_file mfile in
  Sys.remove mfile;
  (match Cjson.of_string dump with
  | Ok (Cjson.Obj kvs) ->
    List.iter
      (fun key ->
        Alcotest.(check bool)
          (key ^ " in the shutdown dump")
          true
          (List.mem_assoc key kvs))
      [
        "gklockd.batch_fill"; "gklockd.queries"; "gklockd.queue_depth";
        "gklockd.connections"; "oracle.memo_evictions"; "oracle.memo_hits";
      ]
  | Ok _ -> Alcotest.fail "metrics dump is not a JSON object"
  | Error e -> Alcotest.fail ("metrics dump is not valid JSON: " ^ e))

let suites =
  [
    ( "net-wire",
      [
        qc_roundtrip; qc_truncated; qc_mutated; qc_garbage;
        qc_payload_boundary;
        tc "oversized length rejected" `Quick test_oversized;
        tc "payload CRC checked" `Quick test_crc_mismatch;
        tc "unknown type byte rejected" `Quick test_unknown_type;
        tc "bad magic rejected" `Quick test_bad_magic;
      ] );
    ( "net-oracle",
      [
        tc "of_fn batch dedups and memoizes" `Quick test_fn_batch_dedup;
        tc "of_fn batch without memo" `Quick test_fn_batch_no_memo;
      ] );
    ( "net-daemon",
      [
        tc "registry verdict parity over the wire" `Slow test_registry_parity;
        tc "quota exhaustion inside a coalesced word" `Slow
          test_quota_mid_word;
        tc "unknown design is a structured error" `Quick test_unknown_design;
        tc "concurrent batches share one oracle safely" `Slow
          test_concurrent_batches;
        tc "oversized reply is a structured error" `Slow test_oversized_reply;
        tc "chunk sizing survives a wide-reply design" `Slow
          test_chunk_sizing_wide_reply;
        tc "tcp shutdown is gated" `Quick test_tcp_shutdown_gating;
        tc "per-client counters are capped" `Quick test_client_counter_cap;
        tc "1k malformed frames: alive, nothing leaked" `Slow
          test_malformed_fuzz;
        tc "metrics dump and clean shutdown" `Quick
          test_metrics_dump_and_shutdown;
      ] );
  ]
