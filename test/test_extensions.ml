(* Tests for the extension modules: BDDs, Verilog I/O, time-frame
   unrolling, the no-scan sequential SAT attack, AppSAT, sensitization,
   VCD export, fault-guided insertion and the full design flow. *)

let tc = Alcotest.test_case

let qcheck ?(count = 50) name arb law = Qc.qcheck ~count name arb law

let seed_arb = QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 300)

let small_comb seed =
  Generator.generate
    {
      Generator.gen_name = "ext";
      seed;
      n_pi = 5;
      n_po = 3;
      n_ff = 0;
      n_gates = 20;
      depth = 4;
      ff_depth_bias = 0.0;
    }

(* ----- Bdd ----- *)

let test_bdd_basics () =
  let m = Bdd.manager ~nvars:3 in
  let a = Bdd.var m 0 and b = Bdd.var m 1 and c = Bdd.var m 2 in
  let f = Bdd.bor m (Bdd.band m a b) c in
  (* truth check over all 8 rows *)
  for row = 0 to 7 do
    let bit i = row land (1 lsl i) <> 0 in
    let expected = (bit 0 && bit 1) || bit 2 in
    Alcotest.(check bool) (Printf.sprintf "row %d" row) expected
      (Bdd.eval m f bit)
  done;
  Alcotest.(check (float 0.001)) "sat count" 5.0 (Bdd.sat_count m f);
  Alcotest.(check (float 0.001)) "prob" 0.625 (Bdd.prob m f);
  (* hash-consing: same function, same node *)
  let f2 = Bdd.bor m c (Bdd.band m b a) in
  Alcotest.(check bool) "canonical" true (Bdd.equal f f2);
  Alcotest.(check bool) "tautology" true
    (Bdd.equal (Bdd.bor m a (Bdd.bnot m a)) (Bdd.btrue m));
  match Bdd.any_sat m f with
  | Some assignment ->
    let lookup i = match List.assoc_opt i assignment with Some v -> v | None -> false in
    Alcotest.(check bool) "witness satisfies" true (Bdd.eval m f lookup)
  | None -> Alcotest.fail "f is satisfiable"

let bdd_matches_eval_law seed =
  let net = small_comb seed in
  let pis = Netlist.inputs net in
  let man = Bdd.manager ~nvars:(List.length pis) in
  let index = Hashtbl.create 8 in
  List.iteri (fun i pi -> Hashtbl.replace index pi i) pis;
  let bdds = Bdd.of_netlist man net ~var_of_input:(Hashtbl.find index) in
  let rng = Random.State.make [| seed; 3 |] in
  let ok = ref true in
  for _ = 1 to 20 do
    let bits = List.map (fun pi -> (pi, Random.State.bool rng)) pis in
    let values = Netlist.eval_comb net (fun id -> List.assoc id bits) in
    List.iter
      (fun (_, d) ->
        let by_bdd =
          Bdd.eval man bdds.(d) (fun v ->
              let pi = List.nth pis v in
              List.assoc pi bits)
        in
        if by_bdd <> values.(d) then ok := false)
      (Netlist.outputs net)
  done;
  !ok

let test_bdd_exact_prob () =
  (* exact probabilities agree with brute-force enumeration *)
  let net = small_comb 77 in
  let probs = Signal_prob.exact net in
  let pis = Netlist.inputs net in
  let n = List.length pis in
  let counts = Array.make (Netlist.num_nodes net) 0 in
  for row = 0 to (1 lsl n) - 1 do
    let assoc = List.mapi (fun i pi -> (pi, row land (1 lsl i) <> 0)) pis in
    let values = Netlist.eval_comb net (fun id -> List.assoc id assoc) in
    Array.iteri (fun id v -> if v then counts.(id) <- counts.(id) + 1) values
  done;
  List.iter
    (fun (_, d) ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "node %d" d)
        (float_of_int counts.(d) /. float_of_int (1 lsl n))
        probs.(d))
    (Netlist.outputs net)

(* ----- Verilog ----- *)

let verilog_roundtrip_law seed =
  let net =
    Generator.generate
      {
        Generator.gen_name = "vr";
        seed;
        n_pi = 4;
        n_po = 3;
        n_ff = 4;
        n_gates = 18;
        depth = 4;
        ff_depth_bias = 0.2;
      }
  in
  let back = Verilog.parse ~name:(Netlist.name net) (Verilog.print net) in
  let c1, _ = Combinationalize.run net in
  let c2, _ = Combinationalize.run back in
  Equiv.check c1 c2 = Equiv.Equivalent

let test_verilog_locked_roundtrip () =
  let net = Benchmarks.tiny () in
  let clock = Sta.clock_for net ~margin:4.5 in
  let d = Insertion.lock ~seed:3 net ~clock_ps:clock ~n_gks:2 in
  let back = Verilog.parse ~name:"locked" (Verilog.print d.Insertion.lnet) in
  let c1, _ = Combinationalize.run d.Insertion.lnet in
  let c2, _ = Combinationalize.run back in
  match Equiv.check c1 c2 with
  | Equiv.Equivalent -> ()
  | Equiv.Different _ -> Alcotest.fail "locked round trip broke the function"

let test_verilog_primitives_and_assign () =
  let text =
    {|// comment
module t (a, b, y, z);
  input a, b;
  output y, z;
  wire w; /* block
  comment */
  nand g1 (w, a, b);
  not (y, w);
  assign z = ~a;
endmodule|}
  in
  let net = Verilog.parse ~name:"t" text in
  let a = Option.get (Netlist.find net "a") in
  let values = Netlist.eval_comb net (fun id -> id = a) in
  (* a=1 b=0: w = nand = 1, y = 0, z = ~a = 0 *)
  Alcotest.(check bool) "y" false values.(List.assoc "y" (Netlist.outputs net));
  Alcotest.(check bool) "z" false values.(List.assoc "z" (Netlist.outputs net))

let test_verilog_errors () =
  let bad text =
    match Verilog.parse ~name:"x" text with
    | _ -> Alcotest.fail "expected parse error"
    | exception Verilog.Parse_error _ -> ()
  in
  bad "module t (a); input a;";
  bad "module t (y); output y; endmodule";
  bad "module t (a, y); input a; output y; FROBX1 u (.Y(y), .A(a)); endmodule"

(* ----- Unroll / sequential SAT attack ----- *)

let test_unroll_structure () =
  let net = Benchmarks.s27 () in
  let two = Unroll.frames net ~k:2 ~share:(fun _ -> false) ~init:`Zero in
  Alcotest.(check int) "no ffs" 0 (List.length (Netlist.ffs two));
  Alcotest.(check int) "inputs 2x4" 8 (List.length (Netlist.inputs two));
  Alcotest.(check int) "outputs 2x1" 2 (List.length (Netlist.outputs two));
  let free = Unroll.frames net ~k:1 ~share:(fun _ -> false) ~init:`Free in
  Alcotest.(check int) "free init adds state inputs" 7
    (List.length (Netlist.inputs free))

let test_unroll_semantics () =
  (* the unrolled circuit computes the same output sequence as cycle-sim *)
  let net = Benchmarks.s27 () in
  let k = 3 in
  let unrolled = Unroll.frames net ~k ~share:(fun _ -> false) ~init:`Zero in
  let rng = Random.State.make [| 5 |] in
  let frames =
    List.init k (fun _ ->
        List.map
          (fun pi -> ((Netlist.node net pi).Netlist.name, Random.State.bool rng))
          (Netlist.inputs net))
  in
  let seq = Seq_attack.oracle_of_netlist net frames in
  let flat =
    List.concat
      (List.mapi
         (fun i frame ->
           List.map (fun (n, v) -> (Printf.sprintf "f%d_%s" i n, v)) frame)
         frames)
  in
  let comb_out = Sat_attack.oracle_of_netlist unrolled flat in
  List.iteri
    (fun i frame_outs ->
      List.iter
        (fun (po, v) ->
          Alcotest.(check bool)
            (Printf.sprintf "f%d_%s" i po)
            v
            (List.assoc (Printf.sprintf "f%d_%s" i po) comb_out))
        frame_outs)
    seq

let test_seq_attack_xor_vs_gk () =
  let net = Benchmarks.tiny () in
  let lk = Xor_lock.lock ~seed:2 net ~n_keys:5 in
  let o =
    Seq_attack.run ~k:4 ~locked:lk.Locked.net ~key_inputs:lk.Locked.key_inputs
      ~oracle_step:(Seq_attack.oracle_of_netlist net) ()
  in
  (match o.Seq_attack.sat.Sat_attack.status with
  | Sat_attack.Key_recovered _ -> ()
  | Sat_attack.Unsat_at_first_iteration _ | Sat_attack.Budget_exhausted ->
    Alcotest.fail "sequential SAT should crack XOR locking without scan");
  let clock = Sta.clock_for net ~margin:4.5 in
  let d = Insertion.lock ~seed:3 net ~clock_ps:clock ~n_gks:2 in
  let stripped, keys = Insertion.strip_keygens d in
  let o2 =
    Seq_attack.run ~k:4 ~locked:stripped ~key_inputs:keys
      ~oracle_step:(Seq_attack.oracle_of_netlist net) ()
  in
  Alcotest.(check bool) "gk immune for every k" true
    (match o2.Seq_attack.sat.Sat_attack.status with
    | Sat_attack.Unsat_at_first_iteration _ -> true
    | Sat_attack.Key_recovered _ | Sat_attack.Budget_exhausted -> false)

(* ----- AppSAT ----- *)

let test_appsat_exact_on_xor () =
  let net = small_comb 21 in
  let lk = Xor_lock.lock ~seed:21 net ~n_keys:8 in
  let oracle = Sat_attack.oracle_of_netlist net in
  let o =
    Appsat.run ~locked:lk.Locked.net ~key_inputs:lk.Locked.key_inputs ~oracle ()
  in
  Alcotest.(check bool) "almost-correct key" true (o.Appsat.error_rate <= 0.01);
  Alcotest.(check int) "key verifies" 0
    (Sat_attack.verify_key ~locked:lk.Locked.net
       ~key_inputs:lk.Locked.key_inputs ~oracle o.Appsat.key)

let test_appsat_beats_compound () =
  (* SARLock + XOR compound: plain SAT needs ~2^n DIPs, AppSAT a handful.
     SARLock goes first so its comparator samples real primary inputs. *)
  let net =
    Generator.generate
      {
        Generator.gen_name = "cmpd";
        seed = 22;
        n_pi = 12;
        n_po = 5;
        n_ff = 0;
        n_gates = 40;
        depth = 5;
        ff_depth_bias = 0.0;
      }
  in
  let sar = Sarlock.lock ~seed:23 net ~n_keys:8 in
  let compound = Xor_lock.lock ~seed:22 sar.Locked.net ~n_keys:6 in
  let keys = sar.Locked.key_inputs @ compound.Locked.key_inputs in
  let oracle = Sat_attack.oracle_of_netlist net in
  let a = Appsat.run ~locked:compound.Locked.net ~key_inputs:keys ~oracle () in
  Alcotest.(check bool) "few DIPs" true (a.Appsat.dips <= 32);
  Alcotest.(check bool) "low error" true (a.Appsat.error_rate <= 0.02);
  let p =
    Sat_attack.run ~max_iterations:300 ~locked:compound.Locked.net
      ~key_inputs:keys ~oracle ()
  in
  Alcotest.(check bool) "plain SAT needs ~2^8 DIPs" true
    (p.Sat_attack.iterations > 100)

(* ----- Sensitization ----- *)

let test_sensitization_output_locking () =
  (* Fig. 1(b): isolated key-gates directly on the output pins *)
  let comb = small_comb 31 in
  let locked = Netlist.copy comb in
  let rng = Random.State.make [| 31 |] in
  let keyed =
    List.mapi
      (fun i (po, d) ->
        let kn = Printf.sprintf "ok%d" i in
        let k = Netlist.add_input locked kn in
        let bit = Random.State.bool rng in
        let fn = if bit then Cell.Xnor else Cell.Xor in
        let g = Netlist.add_gate locked fn [| d; k |] in
        Netlist.set_output_driver locked po g;
        (kn, bit))
      (Netlist.outputs locked)
  in
  let oracle = Sat_attack.oracle_of_netlist comb in
  let o =
    Sensitization.run ~locked ~key_inputs:(List.map fst keyed) ~oracle ()
  in
  Alcotest.(check int) "all bits recovered" (List.length keyed)
    (List.length o.Sensitization.recovered);
  Alcotest.(check bool) "all correct" true
    (List.for_all (fun (k, v) -> List.assoc k keyed = v) o.Sensitization.recovered)

let test_sensitization_blind_on_gk () =
  let net = Benchmarks.tiny () in
  let clock = Sta.clock_for net ~margin:4.5 in
  let d = Insertion.lock ~seed:3 net ~clock_ps:clock ~n_gks:2 in
  let stripped, keys = Insertion.strip_keygens d in
  let scomb, _ = Combinationalize.run stripped in
  let oracle_comb, _ = Combinationalize.run net in
  let o =
    Sensitization.run ~locked:scomb ~key_inputs:keys
      ~oracle:(Sat_attack.oracle_of_netlist oracle_comb) ()
  in
  Alcotest.(check int) "nothing sensitizable" 0
    (List.length o.Sensitization.recovered);
  Alcotest.(check int) "all unresolved" (List.length keys)
    (List.length o.Sensitization.unresolved)

(* ----- Vcd ----- *)

let test_vcd_output () =
  let net = Netlist.create "v" in
  let a = Netlist.add_input net "a" in
  let g = Netlist.add_gate net ~name:"inv" Cell.Not [| a |] in
  Netlist.add_output net "y" g;
  let w = Waveform.make ~initial:Logic.F [ (500, Logic.T); (900, Logic.F) ] in
  let r =
    Timing_sim.run
      ~drive:(fun _ -> Timing_sim.Wave w)
      net
      { Timing_sim.clock_ps = 2000; cycles = 1 }
  in
  let vcd = Vcd.of_result net r ~signals:[ "a"; "inv" ] in
  List.iter
    (fun needle ->
      Alcotest.(check bool) needle true (Astring_contains.contains vcd needle))
    [ "$timescale 1ps $end"; "$var wire 1 ! a $end"; "#0"; "#500"; "#900" ];
  Alcotest.check_raises "unknown signal"
    (Invalid_argument "Vcd.of_result: unknown signal nope") (fun () ->
      ignore (Vcd.of_result net r ~signals:[ "nope" ]))

(* ----- Fault_lock ----- *)

let test_fault_lock () =
  let net = small_comb 41 in
  let ranked = Fault_lock.rank_wires ~samples:32 net in
  (match ranked with
  | (_, top) :: _ -> Alcotest.(check bool) "top impact positive" true (top > 0.0)
  | [] -> Alcotest.fail "no candidates");
  let lk = Fault_lock.lock ~seed:41 ~samples:32 net ~n_keys:5 in
  Alcotest.(check string) "scheme" "fault-xor" lk.Locked.scheme;
  (* transparency with the correct key *)
  (match Equiv.check ~fixed_b:lk.Locked.correct_key net lk.Locked.net with
  | Equiv.Equivalent -> ()
  | Equiv.Different _ -> Alcotest.fail "fault-lock broke the function");
  (* corruption: flipping any single key bit corrupts the outputs *)
  let corrupts =
    List.for_all
      (fun name ->
        Equiv.check ~fixed_b:(Key.flip lk.Locked.correct_key name) net
          lk.Locked.net
        <> Equiv.Equivalent)
      lk.Locked.key_inputs
  in
  Alcotest.(check bool) "every keybit corrupts (high-impact wires)" true corrupts

(* ----- Metrics ----- *)

let test_metrics_ber () =
  let net = small_comb 61 in
  let lk = Xor_lock.lock ~seed:61 net ~n_keys:5 in
  (* the correct key has zero error *)
  Alcotest.(check (float 1e-9)) "correct key BER 0" 0.0
    (Metrics.bit_error_rate ~reference:net lk lk.Locked.correct_key);
  let p = Metrics.wrong_key_profile ~reference:net lk in
  Alcotest.(check bool) "wrong keys corrupt" true (p.Metrics.mean_ber > 0.01);
  Alcotest.(check bool) "bounds ordered" true
    (p.Metrics.min_ber <= p.Metrics.mean_ber
    && p.Metrics.mean_ber <= p.Metrics.max_ber)

let test_metrics_sarlock_low_corruptibility () =
  (* the Sec. I criticism, quantified: SARLock's wrong keys corrupt a
     ~2^-n fraction of outputs while XOR locking corrupts heavily *)
  let net =
    Generator.generate
      { Generator.gen_name = "mb"; seed = 62; n_pi = 12; n_po = 6; n_ff = 0;
        n_gates = 40; depth = 5; ff_depth_bias = 0.0 }
  in
  let sar = Metrics.wrong_key_profile ~reference:net
      (Sarlock.lock ~seed:62 net ~n_keys:8) in
  let xor = Metrics.wrong_key_profile ~reference:net
      (Xor_lock.lock ~seed:62 net ~n_keys:8) in
  Alcotest.(check bool) "sarlock barely corrupts" true
    (sar.Metrics.mean_ber < 0.02);
  Alcotest.(check bool) "xor corrupts an order of magnitude more" true
    (xor.Metrics.mean_ber > 10.0 *. sar.Metrics.mean_ber)

(* ----- Design_flow ----- *)

let test_design_flow () =
  let net = Benchmarks.tiny () in
  let design, report = Design_flow.run ~seed:3 ~clock_margin:4.5 net ~n_gks:2 in
  Alcotest.(check int) "two GKs placed" 2
    (List.length design.Insertion.placements);
  Alcotest.(check int) "one attempt" 1 report.Design_flow.attempts;
  Alcotest.(check (list string)) "nothing dropped" []
    report.Design_flow.dropped_ffs;
  Alcotest.(check bool) "false violations reported" true
    (report.Design_flow.false_violations >= 1);
  Alcotest.(check bool) "overhead positive" true
    (report.Design_flow.cell_overhead_pct > 0.0);
  Alcotest.(check bool) "locked placement grew" true
    (report.Design_flow.locked_place.Placer.hpwl_um
    > report.Design_flow.baseline_place.Placer.hpwl_um);
  (* the report renders *)
  let s = Format.asprintf "%a" Design_flow.pp_report report in
  Alcotest.(check bool) "report mentions overhead" true
    (Astring_contains.contains s "overhead")

let suites =
  [
    ( "ext.bdd",
      [
        tc "basics" `Quick test_bdd_basics;
        tc "exact signal probabilities" `Quick test_bdd_exact_prob;
        qcheck ~count:30 "matches direct evaluation" seed_arb
          bdd_matches_eval_law;
      ] );
    ( "ext.verilog",
      [
        tc "locked round trip" `Quick test_verilog_locked_roundtrip;
        tc "primitives + assign" `Quick test_verilog_primitives_and_assign;
        tc "errors" `Quick test_verilog_errors;
        qcheck ~count:25 "round trip preserves function" seed_arb
          verilog_roundtrip_law;
      ] );
    ( "ext.unroll",
      [
        tc "structure" `Quick test_unroll_structure;
        tc "matches cycle-sim" `Quick test_unroll_semantics;
        tc "seq SAT: XOR falls, GK immune" `Quick test_seq_attack_xor_vs_gk;
      ] );
    ( "ext.appsat",
      [
        tc "exact on XOR" `Quick test_appsat_exact_on_xor;
        tc "beats SARLock compound" `Slow test_appsat_beats_compound;
      ] );
    ( "ext.sensitization",
      [
        tc "cracks output locking" `Quick test_sensitization_output_locking;
        tc "blind on GK" `Quick test_sensitization_blind_on_gk;
      ] );
    ("ext.vcd", [ tc "format" `Quick test_vcd_output ]);
    ("ext.fault_lock", [ tc "ranking + locking" `Quick test_fault_lock ]);
    ( "ext.metrics",
      [
        tc "bit-error rate" `Quick test_metrics_ber;
        tc "SARLock low corruptibility" `Quick
          test_metrics_sarlock_low_corruptibility;
      ] );
    ("ext.design_flow", [ tc "end to end" `Quick test_design_flow ]);
  ]
