(* Tests for the campaign subsystem: Cjson codec, job IDs, the
   content-addressed store (objects, index, manifests, gc/fsck, legacy
   migration), the domain pool (timeouts, retries, structured failures),
   cross-campaign adoption and the interrupt/resume guarantee. *)

let tc = Alcotest.test_case

(* Fresh scratch campaign directory per test; campaign stores are plain
   files so cleanup is best-effort (the temp dir is reaped by the OS
   anyway).  The campaign dir is nested one level down so each test gets
   its own sibling store/ root — sibling campaigns deliberately share a
   store, which would otherwise let job IDs leak between tests. *)
let dir_counter = ref 0

let fresh_parent () =
  incr dir_counter;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "gklock_campaign_test_%d_%d" (Unix.getpid ()) !dir_counter)

let fresh_dir () = Filename.concat (fresh_parent ()) "c"

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl = 0 || go 0

(* ----- Cjson ----- *)

let test_cjson_roundtrip () =
  let v =
    Cjson.Obj
      [
        ("name", Cjson.Str "smoke");
        ("n", Cjson.Int 42);
        ("x", Cjson.Float 1.5);
        ("ok", Cjson.Bool true);
        ("nothing", Cjson.Null);
        ("seeds", Cjson.List [ Cjson.Int 1; Cjson.Int 2 ]);
        ("msg", Cjson.Str "a\"b\\c\nd");
      ]
  in
  let s = Cjson.to_string v in
  (match Cjson.of_string s with
  | Ok v' -> Alcotest.(check string) "reparse" s (Cjson.to_string v')
  | Error e -> Alcotest.failf "parse error: %s" e);
  (* canonical: same value, same bytes *)
  Alcotest.(check string) "stable" s (Cjson.to_string v)

let test_cjson_errors () =
  (match Cjson.of_string "{\"a\": }" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted malformed object");
  (match Cjson.of_string "42 garbage" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted trailing garbage");
  match Cjson.of_string "\"\\u00e9\"" with
  | Ok (Cjson.Str s) -> Alcotest.(check string) "unicode escape" "\xc3\xa9" s
  | _ -> Alcotest.fail "unicode escape"

let test_cjson_accessors () =
  let v = Cjson.Obj [ ("i", Cjson.Int 3); ("f", Cjson.Float 2.5) ] in
  Alcotest.(check (option int)) "mem_int" (Some 3) (Cjson.mem_int "i" v);
  Alcotest.(check (option (float 0.0)))
    "int as float" (Some 3.0) (Cjson.mem_float "i" v);
  Alcotest.(check (option int)) "missing" None (Cjson.mem_int "zzz" v)

(* ----- Cjson properties ----- *)

let qcheck ?(count = 200) name arb law = Qc.qcheck ~count name arb law

(* Ints stressed at the word boundaries: the parser falls back to float
   on overflow, so exact max_int/min_int must stay Int. *)
let gen_int =
  QCheck.Gen.(
    oneof
      [
        small_signed_int;
        int;
        oneofl [ 0; 1; -1; max_int; min_int; max_int - 1; min_int + 1 ];
      ])

(* Floats whose canonical rendering re-parses to the same value: any
   finite float normalized through its 12-significant-digit decimal form
   (a 12-digit decimal → double → decimal trip is the identity, and the
   emitter prints %.12g / %.1f). *)
let gen_safe_float =
  QCheck.Gen.(
    map2
      (fun m e ->
        float_of_string
          (Printf.sprintf "%.12g" (float_of_int m *. (10. ** float_of_int e))))
      (int_range (-10000) 10000)
      (int_range (-3) 3))

let gen_string =
  QCheck.Gen.(
    string_size ~gen:(map Char.chr (int_range 0 255)) (int_range 0 12))

let gen_json =
  let open QCheck.Gen in
  sized (fun n ->
      fix
        (fun self n ->
          let leaf =
            oneof
              [
                return Cjson.Null;
                map (fun b -> Cjson.Bool b) bool;
                map (fun i -> Cjson.Int i) gen_int;
                map (fun f -> Cjson.Float f) gen_safe_float;
                map (fun s -> Cjson.Str s) gen_string;
              ]
          in
          if n <= 0 then leaf
          else
            frequency
              [
                (3, leaf);
                ( 1,
                  map
                    (fun l -> Cjson.List l)
                    (list_size (int_range 0 4) (self (n / 2))) );
                ( 1,
                  map
                    (fun kvs -> Cjson.Obj kvs)
                    (list_size (int_range 0 4)
                       (pair gen_string (self (n / 2)))) );
              ])
        (min n 6))

let arb_json = QCheck.make ~print:Cjson.to_string gen_json

let cjson_roundtrip_law v =
  match Cjson.of_string (Cjson.to_string v) with
  | Ok v' -> v' = v
  | Error e -> QCheck.Test.fail_reportf "parse error: %s" e

let cjson_idempotent_law v =
  (* even for values outside the exact-round-trip domain, the canonical
     form must be a fixpoint of print ∘ parse *)
  let s = Cjson.to_string v in
  match Cjson.of_string s with
  | Ok v' -> Cjson.to_string v' = s
  | Error e -> QCheck.Test.fail_reportf "parse error: %s" e

let arb_any_float =
  QCheck.make
    ~print:(fun f -> Printf.sprintf "%h" f)
    QCheck.Gen.(
      oneof
        [
          float;
          oneofl [ 0.; -0.; 1e-300; 1e300; 4.2e-5; 1. /. 3.; Float.pi ];
        ])

let cjson_float_idempotent_law f =
  cjson_idempotent_law (Cjson.Float f)

let cjson_string_law s = cjson_roundtrip_law (Cjson.Str s)

(* ----- job IDs and matrices ----- *)

let attack_spec ?(seed = 1) () =
  Campaign_job.Attack
    { bench = "s27"; scheme = "xor"; width = 4; attack = "none"; seed }

let test_job_id_deterministic () =
  let a = Campaign_job.id (attack_spec ()) in
  let b = Campaign_job.id (attack_spec ()) in
  Alcotest.(check string) "same spec, same id" a b;
  Alcotest.(check int) "hex digest" 32 (String.length a);
  let c = Campaign_job.id (attack_spec ~seed:2 ()) in
  Alcotest.(check bool) "changed seed, changed id" true (a <> c);
  (* the id is the digest of the canonical spec JSON under the format
     version prefix — the invalidation contract *)
  let expect =
    Digest.to_hex
      (Digest.string
         (Campaign_job.id_format
         ^ Cjson.to_string (Campaign_job.spec_to_json (attack_spec ()))))
  in
  Alcotest.(check string) "digest of canonical spec" expect a

let test_spec_json_roundtrip () =
  List.iter
    (fun spec ->
      match Campaign_job.spec_of_json (Campaign_job.spec_to_json spec) with
      | Ok spec' ->
        Alcotest.(check string)
          "roundtrip id" (Campaign_job.id spec) (Campaign_job.id spec')
      | Error e -> Alcotest.failf "spec roundtrip: %s" e)
    [
      Campaign_job.Table1 { bench = "s5378" };
      Campaign_job.Table2 { bench = "s9234"; profile = "buffers" };
      attack_spec ();
    ]

let test_matrix_expand () =
  let m =
    {
      Campaign_job.m_name = "t";
      m_tables = [];
      m_benches = [ "s27"; "tiny" ];
      m_schemes = [ "xor"; "xor" ] (* dup collapses *);
      m_widths = [ 4 ];
      m_attacks = [ "none" ];
      m_seeds = [ 1; 2 ];
    }
  in
  let jobs = Campaign_job.expand m in
  Alcotest.(check int) "2 benches x 2 seeds, dup scheme deduped" 4
    (List.length jobs);
  let ids = List.map (fun (j : Campaign_job.t) -> j.Campaign_job.id) jobs in
  Alcotest.(check int) "unique ids" 4 (List.length (List.sort_uniq compare ids));
  let sorted =
    List.sort
      (fun (a : Campaign_job.t) (b : Campaign_job.t) ->
        Campaign_job.compare_spec a.Campaign_job.spec b.Campaign_job.spec)
      jobs
  in
  Alcotest.(check bool) "expand is sorted" true (jobs = sorted);
  match Campaign_job.matrix_of_json (Campaign_job.matrix_to_json m) with
  | Ok m' ->
    Alcotest.(check int) "matrix json roundtrip" 4
      (List.length (Campaign_job.expand m'))
  | Error e -> Alcotest.failf "matrix roundtrip: %s" e

let test_builtins () =
  List.iter
    (fun name ->
      match Campaign_job.builtin name with
      | Some m ->
        Alcotest.(check bool)
          (name ^ " non-empty") true
          (Campaign_job.expand m <> [])
      | None -> Alcotest.failf "missing builtin %s" name)
    Campaign_job.builtin_names;
  Alcotest.(check (option reject)) "unknown builtin" None
    (Campaign_job.builtin "no-such-campaign")

(* ----- job store ----- *)

let mk_record ?(seed = 1) outcome =
  let spec = attack_spec ~seed () in
  {
    Job_store.r_id = Campaign_job.id spec;
    r_spec = Campaign_job.spec_to_json spec;
    r_outcome = outcome;
    r_wall_s = 0.25;
  }

let test_store_basic () =
  let dir = fresh_dir () in
  let store = Job_store.open_ dir in
  Alcotest.(check int) "empty" 0 (Job_store.size store);
  let r1 = mk_record (Job_store.Done (Cjson.Obj [ ("keys", Cjson.Int 4) ])) in
  let r2 =
    mk_record ~seed:2
      (Job_store.Failed
         { kind = Job_store.Timeout; message = "timed out"; attempts = 2 })
  in
  Job_store.append store r1;
  Job_store.append store r2;
  (* duplicate id: last record wins *)
  let r1' = mk_record (Job_store.Done (Cjson.Obj [ ("keys", Cjson.Int 8) ])) in
  Job_store.append store r1';
  Job_store.close store;
  let loaded = Job_store.load ~dir in
  Alcotest.(check int) "distinct ids" 2 (List.length loaded);
  (match Job_store.load ~dir |> List.hd with
  | { Job_store.r_outcome = Job_store.Done p; _ } ->
    Alcotest.(check (option int)) "last wins" (Some 8) (Cjson.mem_int "keys" p)
  | _ -> Alcotest.fail "expected Done");
  (* a reopened store sees the same records *)
  let store = Job_store.open_ dir in
  Alcotest.(check int) "reopen" 2 (Job_store.size store);
  Job_store.close store

let test_store_corrupt_line () =
  let dir = fresh_dir () in
  let store = Job_store.open_ dir in
  Job_store.append store
    (mk_record (Job_store.Done (Cjson.Obj [ ("keys", Cjson.Int 4) ])));
  Job_store.close store;
  (* simulate a crash mid-write of a legacy-format line: load must skip
     it while still returning the store-backed record *)
  let oc =
    open_out_gen
      [ Open_append; Open_creat; Open_binary ]
      0o644
      (Filename.concat dir "results.jsonl")
  in
  output_string oc "{\"id\": \"deadbeef\", \"outcome\": {\"st";
  close_out oc;
  Alcotest.(check int) "torn line skipped" 1 (List.length (Job_store.load ~dir))

(* ----- content-addressed store ----- *)

let object_file root digest =
  Filename.concat root
    (Filename.concat "objects"
       (Filename.concat (String.sub digest 0 2) (String.sub digest 2 30)))

let test_cas_objects () =
  let root = Filename.concat (fresh_parent ()) "store" in
  let cas = Cas.open_ root in
  let d1 = Cas.put cas "hello" in
  Alcotest.(check string) "idempotent put" d1 (Cas.put cas "hello");
  Alcotest.(check (option string)) "get" (Some "hello") (Cas.get cas d1);
  Alcotest.(check bool) "mem" true (Cas.mem cas d1);
  Alcotest.(check (option string))
    "absent digest" None
    (Cas.get cas (String.make 32 '0'));
  (* large strings leave the record as $blob references and come back *)
  let big = String.make 4096 'x' in
  let rd =
    Cas.put_record cas
      (Cjson.Obj [ ("small", Cjson.Str "s"); ("big", Cjson.Str big) ])
  in
  (match Cas.get_record cas rd with
  | Ok j -> Alcotest.(check (option string)) "blob resolved" (Some big)
              (Cjson.mem_str "big" j)
  | Error e -> Alcotest.failf "get_record: %s" e);
  let raw = Option.get (Cas.get cas rd) in
  Alcotest.(check bool) "record object holds a reference, not the bytes" false
    (contains ~needle:"xxxx" raw);
  (* a second record with the same blob shares the object *)
  let _rd2 =
    Cas.put_record cas
      (Cjson.Obj [ ("other", Cjson.Int 2); ("big", Cjson.Str big) ])
  in
  let s = Cas.stats cas in
  Alcotest.(check int) "hello + blob + 2 records" 4 s.Cas.st_objects;
  Cas.close cas

let test_cas_torn_index () =
  let root = Filename.concat (fresh_parent ()) "store" in
  let cas = Cas.open_ root in
  let id = Campaign_job.id (attack_spec ()) in
  let digest = Cas.put cas "payload" in
  Cas.index_add cas ~id ~digest;
  Cas.close cas;
  (* crash mid-append: a partial trailing entry *)
  let oc =
    open_out_gen
      [ Open_append; Open_binary ]
      0o644
      (Filename.concat root "index.bin")
  in
  output_string oc "torn!!!";
  close_out oc;
  let cas = Cas.open_ root in
  Alcotest.(check (option string))
    "torn tail ignored on load" (Some digest) (Cas.index_lookup cas id);
  let f = Cas.fsck cas in
  Alcotest.(check int) "torn bytes detected" 7 f.Cas.f_index_torn_bytes;
  Alcotest.(check bool) "repair reported" false f.Cas.f_ok;
  let f2 = Cas.fsck cas in
  Alcotest.(check bool) "second fsck clean" true f2.Cas.f_ok;
  Alcotest.(check (option string))
    "entry survives the repair" (Some digest) (Cas.index_lookup cas id);
  Cas.close cas

let test_cas_fsck_corruption () =
  let parent = fresh_parent () in
  Fs.mkdir_p parent;
  let root = Filename.concat parent "store" in
  let cas = Cas.open_ root in
  let m = Cas.manifest cas ~name:"m" ~dir:parent in
  let add id_seed json =
    let id = Campaign_job.id (attack_spec ~seed:id_seed ()) in
    let digest = Cas.put_record cas json in
    Cas.manifest_add m ~id ~digest;
    Cas.index_add cas ~id ~digest;
    (id, digest)
  in
  let id_bad, d_bad = add 1 (Cjson.Obj [ ("v", Cjson.Int 1) ]) in
  let id_good, _ = add 2 (Cjson.Obj [ ("v", Cjson.Int 2) ]) in
  (* flip bytes in one object in place — a digest mismatch, not a torn
     write *)
  let oc = open_out_bin (object_file root d_bad) in
  output_string oc "garbage";
  close_out oc;
  Alcotest.(check (option string))
    "corrupt object reads as absent" None (Cas.get cas d_bad);
  let f = Cas.fsck cas in
  Alcotest.(check int) "one object quarantined" 1 (List.length f.Cas.f_corrupt);
  Alcotest.(check int) "its index entry dropped" 1 f.Cas.f_index_dropped;
  Alcotest.(check bool) "manifest entry dropped" true
    (f.Cas.f_manifest_dropped = [ ("m", 1) ]);
  Alcotest.(check bool) "quarantine holds the bytes" true
    (Sys.file_exists (Filename.concat root (Filename.concat "quarantine" d_bad)));
  Alcotest.(check bool) "object gone from the tree" false
    (Sys.file_exists (object_file root d_bad));
  Alcotest.(check (option string)) "dropped from the index" None
    (Cas.index_lookup cas id_bad);
  Alcotest.(check bool) "good entry intact" true
    (Cas.index_lookup cas id_good <> None);
  Alcotest.(check bool) "second fsck clean" true (Cas.fsck cas).Cas.f_ok;
  Cas.manifest_close m;
  Cas.close cas

let test_store_legacy_migration () =
  let dir = fresh_dir () in
  Fs.mkdir_p dir;
  (* a pre-CAS store: plain JSONL lines *)
  let records =
    [
      mk_record (Job_store.Done (Cjson.Obj [ ("keys", Cjson.Int 4) ]));
      mk_record ~seed:2
        (Job_store.Failed
           { kind = Job_store.Exception; message = "boom"; attempts = 1 });
    ]
  in
  let oc = open_out_bin (Filename.concat dir "results.jsonl") in
  List.iter
    (fun r ->
      output_string oc (Cjson.to_string (Job_store.record_to_json r) ^ "\n"))
    records;
  close_out oc;
  let render rs =
    String.concat "\n"
      (List.map (fun r -> Cjson.to_string (Job_store.record_to_json r)) rs)
  in
  let before = render (Job_store.load ~dir) in
  (* open_ imports the file into the store and moves it aside *)
  let store = Job_store.open_ dir in
  Alcotest.(check int) "both records imported" 2 (Job_store.size store);
  Job_store.close store;
  Alcotest.(check bool) "results.jsonl renamed" false
    (Sys.file_exists (Filename.concat dir "results.jsonl"));
  Alcotest.(check bool) "migrated file kept" true
    (Sys.file_exists (Filename.concat dir "results.jsonl.migrated"));
  Alcotest.(check string) "load is byte-identical across the migration" before
    (render (Job_store.load ~dir))

(* ----- scale: gc and fsck over a 10k-object store ----- *)

let test_store_gc_fsck_scale () =
  let parent = fresh_parent () in
  Fs.mkdir_p parent;
  let root = Filename.concat parent "store" in
  let cas = Cas.open_ ~sync:false root in
  (* 10k unreferenced objects... *)
  for i = 1 to 10_000 do
    ignore (Cas.put cas (Printf.sprintf "dead object %d" i))
  done;
  (* ...plus 100 live records under a manifest whose campaign exists *)
  let m = Cas.manifest cas ~name:"live" ~dir:parent in
  for i = 1 to 100 do
    let id = Campaign_job.id (attack_spec ~seed:i ()) in
    let digest = Cas.put_record cas (Cjson.Obj [ ("seed", Cjson.Int i) ]) in
    Cas.manifest_add m ~id ~digest;
    Cas.index_add cas ~id ~digest
  done;
  let g = Cas.gc cas in
  Alcotest.(check int) "all dead objects swept" 10_000 g.Cas.gc_swept_objects;
  Alcotest.(check int) "live records kept" 100 g.Cas.gc_live_objects;
  Alcotest.(check int) "index rebuilt" 100 g.Cas.gc_index_entries;
  let f = Cas.fsck cas in
  Alcotest.(check bool) "store clean after gc" true f.Cas.f_ok;
  Alcotest.(check int) "fsck scanned the survivors" 100 f.Cas.f_objects;
  Cas.manifest_close m;
  Cas.close cas

(* ----- runner: fake executors over a tiny matrix ----- *)

let small_matrix ?(name = "t") () =
  {
    Campaign_job.m_name = name;
    m_tables = [];
    m_benches = [ "s27"; "tiny" ];
    m_schemes = [ "xor" ];
    m_widths = [ 4 ];
    m_attacks = [ "none" ];
    m_seeds = [ 1; 2 ];
  }

(* Deterministic payload derived only from the spec, so reports are
   byte-identical however the campaign was scheduled. *)
let fake_payload (j : Campaign_job.t) =
  match j.Campaign_job.spec with
  | Campaign_job.Attack { width; seed; _ } ->
    Cjson.Obj
      [
        ("keys", Cjson.Int width);
        ("status", Cjson.Str "ok");
        ("iterations", Cjson.Int seed);
        ("broken", Cjson.Bool false);
      ]
  | _ -> Cjson.Obj [ ("keys", Cjson.Int 0) ]

(* exec runs in worker domains: shared state needs a lock *)
let counted_exec ?(abort_after = max_int) counts =
  let lock = Mutex.create () in
  let started = ref 0 in
  fun (j : Campaign_job.t) ->
    let n =
      Mutex.lock lock;
      incr started;
      let id = j.Campaign_job.id in
      Hashtbl.replace counts id
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts id));
      let n = !started in
      Mutex.unlock lock;
      n
    in
    if n > abort_after then raise Campaign_runner.Abort;
    fake_payload j

let test_runner_completes () =
  let dir = fresh_dir () in
  let counts = Hashtbl.create 8 in
  let m = small_matrix () in
  let stats =
    Campaign.run ~workers:2 ~timeout_s:30.0 ~exec:(counted_exec counts) ~dir m
  in
  Alcotest.(check int) "ok" 4 stats.Campaign_runner.ok;
  Alcotest.(check int) "ran" 4 stats.Campaign_runner.ran;
  Alcotest.(check bool) "not aborted" false stats.Campaign_runner.aborted;
  Hashtbl.iter
    (fun _ n -> Alcotest.(check int) "executed once" 1 n)
    counts;
  (* artifacts present *)
  List.iter
    (fun f ->
      Alcotest.(check bool) (f ^ " written") true
        (Sys.file_exists (Filename.concat dir f)))
    [ "matrix.json"; "store.json"; "trace.jsonl"; "summary.json"; "report.txt" ];
  (* second run is a pure resume: everything skipped, nothing re-run *)
  let stats2 =
    Campaign.run ~workers:2 ~timeout_s:30.0 ~exec:(counted_exec counts) ~dir m
  in
  Alcotest.(check int) "all skipped" 4 stats2.Campaign_runner.skipped;
  Alcotest.(check int) "none ran" 0 stats2.Campaign_runner.ran;
  Hashtbl.iter
    (fun _ n -> Alcotest.(check int) "still executed once" 1 n)
    counts

(* Sibling campaigns share a store: a second campaign over the same
   specs adopts every result instead of re-running, and a widened matrix
   executes only the delta. *)
let test_store_adoption () =
  let parent = fresh_parent () in
  let counts = Hashtbl.create 8 in
  let m = small_matrix () in
  let stats_a =
    Campaign.run ~workers:2 ~timeout_s:30.0 ~exec:(counted_exec counts)
      ~dir:(Filename.concat parent "a") m
  in
  Alcotest.(check int) "first campaign runs everything" 4
    stats_a.Campaign_runner.ran;
  (* same matrix, different campaign dir, same sibling store *)
  let stats_b =
    Campaign.run ~workers:2 ~timeout_s:30.0 ~exec:(counted_exec counts)
      ~dir:(Filename.concat parent "b") m
  in
  Alcotest.(check int) "sibling re-runs nothing" 0 stats_b.Campaign_runner.ran;
  Alcotest.(check int) "everything adopted" 4 stats_b.Campaign_runner.skipped;
  Hashtbl.iter (fun _ n -> Alcotest.(check int) "executed once" 1 n) counts;
  Alcotest.(check string) "adopted results render identically"
    (read_file (Filename.concat (Filename.concat parent "a") "report.txt"))
    (read_file (Filename.concat (Filename.concat parent "b") "report.txt"));
  (* widened matrix: only the unseen cells execute *)
  let wide = { m with Campaign_job.m_seeds = [ 1; 2; 3 ] } in
  let stats_c =
    Campaign.run ~workers:2 ~timeout_s:30.0 ~exec:(counted_exec counts)
      ~dir:(Filename.concat parent "c") wide
  in
  Alcotest.(check int) "only the delta ran" 2 stats_c.Campaign_runner.ran;
  Alcotest.(check int) "the rest adopted" 4 stats_c.Campaign_runner.skipped;
  Hashtbl.iter (fun _ n -> Alcotest.(check int) "still once" 1 n) counts

(* ISSUE: kill a campaign after N of M jobs, resume, assert the final
   report is byte-identical to an uninterrupted run and completed jobs
   were not re-executed. *)
let test_interrupt_resume () =
  let m = small_matrix () in
  (* reference: uninterrupted run *)
  let dir_ref = fresh_dir () in
  let _ =
    Campaign.run ~workers:1 ~timeout_s:30.0
      ~exec:(counted_exec (Hashtbl.create 8))
      ~dir:dir_ref m
  in
  (* interrupted run: the executor aborts the campaign on the 3rd job *)
  let dir = fresh_dir () in
  let counts = Hashtbl.create 8 in
  let stats =
    Campaign.run ~workers:1 ~timeout_s:30.0
      ~exec:(counted_exec ~abort_after:2 counts)
      ~dir m
  in
  Alcotest.(check bool) "aborted" true stats.Campaign_runner.aborted;
  Alcotest.(check int) "2 of 4 done before the kill" 2 stats.Campaign_runner.ok;
  let done_before =
    List.filter_map
      (fun (r : Job_store.record) ->
        match r.Job_store.r_outcome with
        | Job_store.Done _ -> Some r.Job_store.r_id
        | Job_store.Failed _ -> None)
      (Job_store.load ~dir)
  in
  Alcotest.(check int) "store has the completed jobs" 2
    (List.length done_before);
  (* resume *)
  let stats2 =
    Campaign.run ~workers:1 ~timeout_s:30.0 ~exec:(counted_exec counts) ~dir m
  in
  Alcotest.(check int) "resume skips completed" 2 stats2.Campaign_runner.skipped;
  Alcotest.(check int) "resume runs the rest" 2 stats2.Campaign_runner.ok;
  List.iter
    (fun id ->
      Alcotest.(check int) "completed job not re-executed" 1
        (Hashtbl.find counts id))
    done_before;
  (* byte-identical report *)
  Alcotest.(check string) "report identical to uninterrupted run"
    (read_file (Filename.concat dir_ref "report.txt"))
    (read_file (Filename.concat dir "report.txt"))

(* ISSUE: a job that sleeps past its timeout and a job that raises both
   land in the store as structured failures without poisoning their
   siblings. *)
let test_timeout_and_crash_isolated () =
  let dir = fresh_dir () in
  let m = small_matrix () in
  let exec (j : Campaign_job.t) =
    match j.Campaign_job.spec with
    | Campaign_job.Attack { bench = "s27"; seed = 1; _ } ->
      Unix.sleepf 0.5;
      fake_payload j
    | Campaign_job.Attack { bench = "tiny"; seed = 1; _ } ->
      failwith "boom"
    | _ -> fake_payload j
  in
  let stats = Campaign.run ~workers:2 ~timeout_s:0.05 ~retries:0 ~exec ~dir m in
  Alcotest.(check int) "siblings completed" 2 stats.Campaign_runner.ok;
  Alcotest.(check int) "one timeout" 1 stats.Campaign_runner.timed_out;
  Alcotest.(check int) "one failure" 1 stats.Campaign_runner.failed;
  Alcotest.(check int) "timed-out domain abandoned" 1
    stats.Campaign_runner.abandoned;
  let records = Job_store.load ~dir in
  Alcotest.(check int) "every job has an outcome" 4 (List.length records);
  let timeouts, crashes =
    List.partition
      (fun (r : Job_store.record) ->
        match r.Job_store.r_outcome with
        | Job_store.Failed { kind = Job_store.Timeout; _ } -> true
        | _ -> false)
      (List.filter
         (fun (r : Job_store.record) ->
           match r.Job_store.r_outcome with
           | Job_store.Failed _ -> true
           | Job_store.Done _ -> false)
         records)
  in
  (match timeouts with
  | [ { Job_store.r_outcome = Job_store.Failed { message; attempts; _ }; _ } ]
    ->
    Alcotest.(check int) "timeout after 1 attempt" 1 attempts;
    Alcotest.(check bool) "timeout message" true
      (String.length message > 0)
  | _ -> Alcotest.fail "expected exactly one timeout record");
  (match crashes with
  | [ { Job_store.r_outcome = Job_store.Failed { message; _ }; _ } ] ->
    Alcotest.(check bool) "exception message captured" true
      (contains ~needle:"boom" message)
  | _ -> Alcotest.fail "expected exactly one exception record");
  (* a resume re-runs nothing: failures are outcomes too *)
  let stats2 =
    Campaign.run ~workers:2 ~timeout_s:0.05 ~retries:0
      ~exec:(fun _ -> Alcotest.fail "resumed a recorded job")
      ~dir m
  in
  Alcotest.(check int) "failures not retried on resume" 4
    stats2.Campaign_runner.skipped;
  (* the report renders failures as rows, not exceptions *)
  let report = Campaign.report ~dir m in
  Alcotest.(check bool) "report mentions TIMEOUT" true
    (contains ~needle:"TIMEOUT" report);
  (* let the abandoned sleeper drain before the process exits *)
  Unix.sleepf 0.5

let test_transient_retry () =
  let dir = fresh_dir () in
  let store = Job_store.open_ dir in
  let job = Campaign_job.make (attack_spec ()) in
  let attempts = Atomic.make 0 in
  let exec (j : Campaign_job.t) =
    if Atomic.fetch_and_add attempts 1 = 0 then
      raise (Campaign_runner.Transient "flaky")
    else fake_payload j
  in
  let config =
    { Campaign_runner.workers = 1; timeout_s = 0.0; max_retries = 1 }
  in
  let stats = Campaign_runner.run ~store config ~jobs:[ job ] ~exec in
  Job_store.close store;
  Alcotest.(check int) "retried once" 1 stats.Campaign_runner.retries;
  Alcotest.(check int) "then succeeded" 1 stats.Campaign_runner.ok;
  Alcotest.(check int) "two executions" 2 (Atomic.get attempts)

let test_transient_exhausted () =
  let dir = fresh_dir () in
  let store = Job_store.open_ dir in
  let job = Campaign_job.make (attack_spec ()) in
  let exec _ = raise (Campaign_runner.Transient "still flaky") in
  let config =
    { Campaign_runner.workers = 1; timeout_s = 0.0; max_retries = 2 }
  in
  let stats = Campaign_runner.run ~store config ~jobs:[ job ] ~exec in
  Job_store.close store;
  Alcotest.(check int) "all retries used" 2 stats.Campaign_runner.retries;
  Alcotest.(check int) "then failed" 1 stats.Campaign_runner.failed;
  match Job_store.load ~dir with
  | [ { Job_store.r_outcome = Job_store.Failed { attempts; kind; _ }; _ } ] ->
    Alcotest.(check int) "attempts recorded" 3 attempts;
    Alcotest.(check bool) "recorded as exception" true
      (kind = Job_store.Exception)
  | _ -> Alcotest.fail "expected one failure record"

let test_runner_validation () =
  let dir = fresh_dir () in
  let store = Job_store.open_ dir in
  let config =
    { Campaign_runner.workers = 0; timeout_s = 0.0; max_retries = 0 }
  in
  Alcotest.check_raises "workers >= 1"
    (Invalid_argument "Campaign_runner.run: workers must be >= 1") (fun () ->
      ignore
        (Campaign_runner.run ~store config ~jobs:[] ~exec:(fun _ -> Cjson.Null)));
  let config =
    { Campaign_runner.workers = 1; timeout_s = 0.0; max_retries = -1 }
  in
  Alcotest.check_raises "max_retries >= 0"
    (Invalid_argument "Campaign_runner.run: max_retries must be >= 0")
    (fun () ->
      ignore
        (Campaign_runner.run ~store config ~jobs:[] ~exec:(fun _ -> Cjson.Null)));
  Job_store.close store

(* ----- Parallel satellite: argument validation + nested-use guard ----- *)

let test_parallel_validation () =
  Alcotest.check_raises "domains >= 1"
    (Invalid_argument "Parallel.map: domains must be >= 1 (got 0)") (fun () ->
      ignore (Parallel.map ~domains:0 (fun x -> x) [ 1; 2; 3 ]));
  Alcotest.check_raises "negative domains"
    (Invalid_argument "Parallel.map: domains must be >= 1 (got -2)") (fun () ->
      ignore (Parallel.map ~domains:(-2) (fun x -> x) [ 1 ]))

let test_parallel_nested_sequential () =
  (* under run_sequentially, nested maps degrade to List.map instead of
     spawning domains from a worker domain *)
  let xs = List.init 20 Fun.id in
  let got =
    Parallel.run_sequentially (fun () ->
        Parallel.map ~domains:4 (fun x -> x * x) xs)
  in
  Alcotest.(check (list int)) "nested map" (List.map (fun x -> x * x) xs) got;
  (* and the flag is restored afterwards: a top-level map still works *)
  let got = Parallel.map ~domains:2 (fun x -> x + 1) xs in
  Alcotest.(check (list int)) "flag restored" (List.map (( + ) 1) xs) got

let suites =
  [
    ( "campaign.cjson",
      [
        tc "roundtrip" `Quick test_cjson_roundtrip;
        tc "errors" `Quick test_cjson_errors;
        tc "accessors" `Quick test_cjson_accessors;
        qcheck "parse∘print identity" arb_json cjson_roundtrip_law;
        qcheck "canonical form is a fixpoint" arb_json cjson_idempotent_law;
        qcheck ~count:500 "string escaping round-trips"
          QCheck.(string_gen Gen.(map Char.chr (int_range 0 255)))
          cjson_string_law;
        qcheck ~count:500 "arbitrary floats reach a fixpoint" arb_any_float
          cjson_float_idempotent_law;
      ] );
    ( "campaign.job",
      [
        tc "content-derived id" `Quick test_job_id_deterministic;
        tc "spec json roundtrip" `Quick test_spec_json_roundtrip;
        tc "matrix expand" `Quick test_matrix_expand;
        tc "builtins" `Quick test_builtins;
      ] );
    ( "campaign.store",
      [
        tc "append/load/last-wins" `Quick test_store_basic;
        tc "torn line skipped" `Quick test_store_corrupt_line;
        tc "legacy migration round-trip" `Quick test_store_legacy_migration;
      ] );
    ( "campaign.cas",
      [
        tc "objects and blob sharing" `Quick test_cas_objects;
        tc "torn index tolerated and repaired" `Quick test_cas_torn_index;
        tc "corruption quarantined" `Quick test_cas_fsck_corruption;
        tc "gc and fsck at 10k objects" `Slow test_store_gc_fsck_scale;
      ] );
    ( "campaign.runner",
      [
        tc "completes and resumes" `Quick test_runner_completes;
        tc "cross-campaign adoption" `Quick test_store_adoption;
        tc "interrupt/resume byte-identical" `Quick test_interrupt_resume;
        tc "timeout and crash isolated" `Slow test_timeout_and_crash_isolated;
        tc "transient retry" `Quick test_transient_retry;
        tc "transient exhausted" `Quick test_transient_exhausted;
        tc "config validation" `Quick test_runner_validation;
      ] );
    ( "campaign.parallel",
      [
        tc "domains validation" `Quick test_parallel_validation;
        tc "nested map sequential" `Quick test_parallel_nested_sequential;
      ] );
  ]
