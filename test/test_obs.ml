(* The observability layer (lib/obs) and the regression tests for the
   bugfix sweep that shipped with it: expired budgets, relaxed-oracle
   default reads, VCD identifier escaping and same-time event ordering. *)

let tc = Alcotest.test_case

let comb_circuit seed =
  let net =
    Generator.generate
      {
        Generator.gen_name = Printf.sprintf "obs%d" seed;
        seed;
        n_pi = 8;
        n_po = 5;
        n_ff = 6;
        n_gates = 50;
        depth = 7;
        ff_depth_bias = 0.2;
      }
  in
  fst (Combinationalize.run net)

let tmp_file suffix = Filename.temp_file "gklock_obs" suffix

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let count_lines_with path needles =
  let ic = open_in path in
  let n = ref 0 in
  (try
     while true do
       let line = input_line ic in
       if List.for_all (Astring_contains.contains line) needles then incr n
     done
   with End_of_file -> ());
  close_in ic;
  !n

(* ----- Metrics ----- *)

let test_metrics_counters () =
  let c = Obs.Metrics.counter "test.counter_a" in
  let before = Obs.Metrics.value c in
  Obs.Metrics.incr c;
  Obs.Metrics.add c 41;
  Alcotest.(check int) "incr + add" (before + 42) (Obs.Metrics.value c);
  (* registry returns the same instrument for the same name *)
  let c' = Obs.Metrics.counter "test.counter_a" in
  Obs.Metrics.incr c';
  Alcotest.(check int) "shared handle" (before + 43) (Obs.Metrics.value c)

let test_metrics_snapshot () =
  let c = Obs.Metrics.counter "test.snap_counter" in
  let g = Obs.Metrics.gauge "test.snap_gauge" in
  let h = Obs.Metrics.histogram "test.snap_hist" in
  Obs.Metrics.add c 7;
  Obs.Metrics.set g 2.5;
  Obs.Metrics.observe h 0.25;
  Obs.Metrics.observe h 4.0;
  let dump = Obs.Metrics.dump () in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("dump has " ^ needle) true
        (Astring_contains.contains dump needle))
    [
      "\"test.snap_counter\"";
      "\"test.snap_gauge\":2.5";
      "\"test.snap_hist\"";
      "\"count\":2";
    ];
  (* parseable as one JSON object *)
  (match Cjson.of_string dump with
  | Ok (Cjson.Obj _) -> ()
  | Ok _ -> Alcotest.fail "metrics dump is not a JSON object"
  | Error e -> Alcotest.fail ("metrics dump unparseable: " ^ e));
  let path = tmp_file ".json" in
  Obs.Metrics.write_file path;
  Alcotest.(check bool) "write_file round-trips" true
    (String.trim (read_file path) = String.trim dump);
  Sys.remove path

(* ----- Trace emission + validation ----- *)

let test_trace_spans_validate () =
  let path = tmp_file ".jsonl" in
  Obs.Trace.enable ~file:path ();
  Alcotest.(check bool) "enabled" true (Obs.Trace.enabled ());
  Obs.Trace.with_span ~args:[ ("k", Cjson.Str "v") ] "outer" (fun () ->
      Obs.Trace.with_span "inner" (fun () ->
          Obs.Trace.instant ~args:[ ("n", Cjson.Int 1) ] "tick");
      Obs.Trace.counter_event "series" [ ("x", 1.0) ]);
  Obs.Trace.disable ();
  Alcotest.(check bool) "disabled" false (Obs.Trace.enabled ());
  (match Obs.Trace.validate_file path with
  | Ok c ->
    Alcotest.(check int) "two spans" 2 c.Obs.Trace.v_spans;
    Alcotest.(check int) "nested depth" 2 c.Obs.Trace.v_max_depth;
    Alcotest.(check bool) "all records counted" true
      (c.Obs.Trace.v_events >= 6)
  | Error e -> Alcotest.fail ("trace should validate: " ^ e));
  Sys.remove path

let test_trace_span_closed_on_raise () =
  let path = tmp_file ".jsonl" in
  Obs.Trace.enable ~file:path ();
  (try
     Obs.Trace.with_span "doomed" (fun () -> failwith "boom")
   with Failure _ -> ());
  Obs.Trace.disable ();
  (match Obs.Trace.validate_file path with
  | Ok c -> Alcotest.(check int) "span still closed" 1 c.Obs.Trace.v_spans
  | Error e -> Alcotest.fail ("trace should validate: " ^ e));
  Sys.remove path

let test_trace_validator_rejects () =
  let write_lines lines =
    let path = tmp_file ".jsonl" in
    let oc = open_out path in
    List.iter (fun l -> output_string oc (l ^ "\n")) lines;
    close_out oc;
    path
  in
  let expect_invalid what lines =
    let path = write_lines lines in
    (match Obs.Trace.validate_file path with
    | Ok _ -> Alcotest.fail (what ^ " should be rejected")
    | Error _ -> ());
    Sys.remove path
  in
  expect_invalid "unclosed span"
    [ {|{"name":"a","ph":"B","ts":1,"pid":1,"tid":0}|} ];
  expect_invalid "mismatched close"
    [
      {|{"name":"a","ph":"B","ts":1,"pid":1,"tid":0}|};
      {|{"name":"b","ph":"E","ts":2,"pid":1,"tid":0}|};
    ];
  expect_invalid "stray close"
    [ {|{"name":"a","ph":"E","ts":1,"pid":1,"tid":0}|} ];
  expect_invalid "time went backwards"
    [
      {|{"name":"a","ph":"i","ts":5,"pid":1,"tid":0}|};
      {|{"name":"b","ph":"i","ts":4,"pid":1,"tid":0}|};
    ];
  expect_invalid "unknown phase"
    [ {|{"name":"a","ph":"Q","ts":1,"pid":1,"tid":0}|} ];
  expect_invalid "missing field" [ {|{"name":"a","ph":"i","ts":1}|} ];
  expect_invalid "not json" [ "nonsense" ]

let test_trace_attack_iteration_spans () =
  let comb = comb_circuit 70 in
  let lk = Xor_lock.lock ~seed:70 comb ~n_keys:6 in
  let path = tmp_file ".jsonl" in
  Obs.Trace.enable ~file:path ();
  let o =
    Attack.run ~name:"sat" ~locked:lk.Locked.net
      ~key_inputs:lk.Locked.key_inputs
      ~oracle:(Oracle.of_netlist comb)
      ()
  in
  Obs.Trace.disable ();
  (match Obs.Trace.validate_file path with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("attack trace should validate: " ^ e));
  (* the acceptance contract: attack.iteration spans == reported
     iteration telemetry, exactly *)
  Alcotest.(check int) "iteration spans match telemetry" o.Attack.iterations
    (count_lines_with path [ {|"attack.iteration"|}; {|"ph":"B"|} ]);
  Alcotest.(check int) "one attack.run span" 1
    (count_lines_with path [ {|"attack.run"|}; {|"ph":"B"|} ]);
  Sys.remove path

(* ----- Budget: zero/expired deadline (regression) ----- *)

let test_budget_zero_deadline_structured () =
  (* deadline_s:0.0 is already expired: the very first check must trip —
     deterministically, not depending on clock resolution *)
  let b = Budget.create ~deadline_s:0.0 () in
  Alcotest.check_raises "first check trips" (Budget.Exhausted Budget.Deadline)
    (fun () -> Budget.check b);
  let b2 = Budget.create ~deadline_s:(-5.0) () in
  Alcotest.check_raises "negative deadline trips"
    (Budget.Exhausted Budget.Deadline) (fun () -> Budget.tick b2);
  Alcotest.(check int) "no iterations charged" 0 (Budget.iterations b2)

let attack_with_zero_deadline name =
  let comb = comb_circuit 71 in
  let lk = Xor_lock.lock ~seed:71 comb ~n_keys:8 in
  let budget = Budget.create ~deadline_s:0.0 () in
  let oracle = Oracle.of_netlist ~budget comb in
  let o =
    Attack.run ~budget ~name ~locked:lk.Locked.net
      ~key_inputs:lk.Locked.key_inputs ~oracle ()
  in
  (match o.Attack.verdict with
  | Attack.Out_of_budget Budget.Deadline -> ()
  | v ->
    Alcotest.fail
      (name ^ ": expected out_of_budget_deadline, got "
     ^ Attack.verdict_name v));
  Alcotest.(check int) (name ^ ": zero iterations") 0 o.Attack.iterations;
  (* the structured verdict must arrive before the first oracle query *)
  Alcotest.(check int) (name ^ ": zero oracle queries") 0 o.Attack.queries

let test_sat_zero_deadline () = attack_with_zero_deadline "sat"
let test_appsat_zero_deadline () = attack_with_zero_deadline "appsat"

(* ----- Oracle: relaxed default reads (regression) ----- *)

let seq_circuit () =
  (* one FF whose init is undefined in the source: combinationalized it
     becomes the pseudo-input ppi_f *)
  let n = Netlist.create "obsseq" in
  let a = Netlist.add_input n "a" in
  let f = Netlist.add_ff n ~name:"f" a in
  let g = Netlist.add_gate n ~name:"g" Cell.Xor [| a; f |] in
  Netlist.add_output n "o" g;
  fst (Combinationalize.run n)

let test_oracle_partial_default_consistent () =
  let comb = seq_circuit () in
  let o = Oracle.of_netlist comb in
  let names = Oracle.input_names o in
  Alcotest.(check bool) "ppi exposed" true (List.mem "ppi_f" names);
  let strict_q = List.map (fun nm -> (nm, nm = "a")) names in
  let strict = Oracle.query o strict_q in
  let defaults_c = Obs.Metrics.counter "oracle.partial_defaults" in
  let defaults_before = Obs.Metrics.value defaults_c in
  (* same query through the relaxed path, without naming the FF: the
     unmentioned ppi must read false — the same assignment — and land on
     the same memo entry *)
  let relaxed = Oracle.query (Oracle.relax o) [ ("a", true) ] in
  Alcotest.(check bool) "relaxed default = explicit false" true
    (strict = relaxed);
  Alcotest.(check int) "no second evaluation (shared memo key)" 1
    (Oracle.queries o);
  Alcotest.(check int) "memo hit recorded" 1 (Oracle.memo_hits o);
  Alcotest.(check bool) "defaulted reads are counted, not silent" true
    (Obs.Metrics.value defaults_c > defaults_before)

(* ----- VCD identifier escaping (regression) ----- *)

let test_vcd_escapes_identifiers () =
  let n = Netlist.create "bad design" in
  let a = Netlist.add_input n "in put" in
  let b = Netlist.add_input n "x$y" in
  let g1 = Netlist.add_gate n ~name:"a b" Cell.And [| a; b |] in
  let g2 = Netlist.add_gate n ~name:"a$b" Cell.Or [| a; b |] in
  let g3 = Netlist.add_gate n ~name:"tab\there" Cell.Xor [| g1; g2 |] in
  Netlist.add_output n "o" g3;
  let r = Timing_sim.run n { Timing_sim.clock_ps = 5000; cycles = 1 } in
  let vcd = Vcd.of_result n r ~signals:[] in
  let lines = String.split_on_char '\n' vcd in
  let var_names = ref [] in
  List.iter
    (fun line ->
      if String.length line >= 4 && String.sub line 0 4 = "$var" then begin
        (* a well-formed declaration is exactly
           "$var wire 1 <code> <name> $end": six space-free tokens *)
        let toks =
          List.filter (fun t -> t <> "") (String.split_on_char ' ' line)
        in
        Alcotest.(check int) ("tokens in " ^ line) 6 (List.length toks);
        let name = List.nth toks 4 in
        Alcotest.(check bool) ("no $ in " ^ name) false
          (String.contains name '$');
        var_names := name :: !var_names
      end;
      if String.length line >= 6 && String.sub line 0 6 = "$scope" then
        Alcotest.(check int) "scope tokens" 4
          (List.length
             (List.filter (fun t -> t <> "") (String.split_on_char ' ' line))))
    lines;
  (* "a b" and "a$b" both sanitize to a_b: uniquified, not collided *)
  let sorted = List.sort_uniq compare !var_names in
  Alcotest.(check int) "var names stay distinct" (List.length !var_names)
    (List.length sorted);
  Alcotest.(check bool) "collision got a suffix" true
    (List.mem "a_b" sorted && List.mem "a_b_2" sorted)

(* ----- Event queue: same-time FIFO (regression) ----- *)

let test_event_queue_same_time_fifo () =
  let q = Event_queue.create () in
  Event_queue.add q ~time:5 0;
  Event_queue.add q ~time:3 100;
  for i = 1 to 49 do
    Event_queue.add q ~time:5 i
  done;
  Event_queue.add q ~time:7 200;
  (match Event_queue.pop_min q with
  | Some (3, 100) -> ()
  | _ -> Alcotest.fail "earliest time first");
  for i = 0 to 49 do
    match Event_queue.pop_min q with
    | Some (5, j) when j = i -> ()
    | Some (t, j) ->
      Alcotest.fail
        (Printf.sprintf "same-time pop %d returned (%d, %d)" i t j)
    | None -> Alcotest.fail "queue drained early"
  done;
  (match Event_queue.pop_min q with
  | Some (7, 200) -> ()
  | _ -> Alcotest.fail "latest time last");
  Alcotest.(check bool) "drained" true (Event_queue.is_empty q)

let test_sim_same_time_edges () =
  (* two inputs of one XOR gate toggle at the same instant: the gate sees
     two same-time re-evaluation events.  FIFO ordering makes the second
     (fully updated) evaluation win, so the gate settles back to 0 —
     LIFO would leave it stuck at 1.  Waveform.make then collapses the
     zero-width T excursion (same-time last-write-wins), so the wave
     must show no transition at all. *)
  let n = Netlist.create "tie" in
  let a = Netlist.add_input n "a" in
  let b = Netlist.add_input n "b" in
  let g = Netlist.add_gate n ~name:"g" Cell.Xor [| a; b |] in
  Netlist.add_output n "o" g;
  let wave = Waveform.make ~initial:Logic.F [ (1000, Logic.T) ] in
  let r =
    Timing_sim.run
      ~drive:(fun _ -> Timing_sim.Wave wave)
      n
      { Timing_sim.clock_ps = 5000; cycles = 1 }
  in
  let gw = Timing_sim.wave_of r n "g" in
  Alcotest.(check char) "settles to 0"
    (Logic.to_char Logic.F)
    (Logic.to_char (Waveform.value_at gw 2000));
  Alcotest.(check int) "zero-width excursion collapsed" 0
    (List.length (Waveform.transitions gw))

let suites =
  [
    ( "obs.metrics",
      [
        tc "counters" `Quick test_metrics_counters;
        tc "snapshot/dump/write" `Quick test_metrics_snapshot;
      ] );
    ( "obs.trace",
      [
        tc "spans validate" `Quick test_trace_spans_validate;
        tc "span closed on raise" `Quick test_trace_span_closed_on_raise;
        tc "validator rejects bad files" `Quick test_trace_validator_rejects;
        tc "attack iteration spans" `Quick test_trace_attack_iteration_spans;
      ] );
    ( "obs.regressions",
      [
        tc "budget zero deadline" `Quick test_budget_zero_deadline_structured;
        tc "sat attack, expired budget" `Quick test_sat_zero_deadline;
        tc "appsat, expired budget" `Quick test_appsat_zero_deadline;
        tc "oracle relaxed defaults" `Quick
          test_oracle_partial_default_consistent;
        tc "vcd identifier escaping" `Quick test_vcd_escapes_identifiers;
        tc "event queue same-time FIFO" `Quick
          test_event_queue_same_time_fifo;
        tc "sim same-time edges" `Quick test_sim_same_time_edges;
      ] );
  ]
