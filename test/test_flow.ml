(* Tests for delay composition, the cleanup synthesis passes and the toy
   placer. *)

let tc = Alcotest.test_case

let qcheck ?(count = 100) name arb law = Qc.qcheck ~count name arb law

(* ----- Delay_synth ----- *)

let compose_accuracy_law profile target =
  let target = 50 + (abs target mod 5000) in
  let cells, achieved = Delay_synth.compose profile ~target_ps:target in
  let sum = List.fold_left (fun a c -> a + c.Cell.delay_ps) 0 cells in
  sum = achieved && abs (achieved - target) <= Delay_synth.tolerance_ps profile

let test_compose_profiles () =
  let std_cells, std = Delay_synth.compose `Standard ~target_ps:3000 in
  let buf_cells, buf = Delay_synth.compose `Buffers_only ~target_ps:3000 in
  let cus_cells, cus = Delay_synth.compose `Custom ~target_ps:3000 in
  Alcotest.(check bool) "std fewer cells than buffers-only" true
    (List.length std_cells < List.length buf_cells);
  Alcotest.(check int) "custom single cell" 1 (List.length cus_cells);
  Alcotest.(check int) "custom exact" 3000 cus;
  Alcotest.(check bool) "tolerances respected" true
    (abs (std - 3000) <= Delay_synth.tolerance_ps `Standard
    && abs (buf - 3000) <= Delay_synth.tolerance_ps `Buffers_only);
  (* polarity: all composed cells are buffers *)
  Alcotest.(check bool) "non-inverting" true
    (List.for_all (fun c -> c.Cell.fn = Cell.Buf) std_cells)

let test_compose_zero () =
  let cells, achieved = Delay_synth.compose `Standard ~target_ps:0 in
  Alcotest.(check int) "no cells" 0 (List.length cells);
  Alcotest.(check int) "zero" 0 achieved

let test_chain_builds_delay () =
  let net = Netlist.create "c" in
  let a = Netlist.add_input net "a" in
  let last, achieved =
    Delay_synth.chain net `Standard ~from_:a ~target_ps:2100 ~prefix:"d"
  in
  Netlist.add_output net "y" last;
  Netlist.validate net;
  (* the chain's STA arrival equals the achieved delay *)
  let sta = Sta.analyze net ~clock_ps:10000 in
  Alcotest.(check int) "arrival = achieved" achieved (Sta.arrival sta last).Sta.amax;
  Alcotest.(check bool) "close to target" true (abs (achieved - 2100) <= 35)

let test_chain_zero_is_identity () =
  let net = Netlist.create "c" in
  let a = Netlist.add_input net "a" in
  let last, achieved = Delay_synth.chain net `Standard ~from_:a ~target_ps:0 ~prefix:"d" in
  Alcotest.(check int) "same node" a last;
  Alcotest.(check int) "zero" 0 achieved

(* ----- Synth ----- *)

let test_synth_const_folding () =
  let net = Netlist.create "s" in
  let a = Netlist.add_input net "a" in
  let c0 = Netlist.add_const net false in
  let c1 = Netlist.add_const net true in
  let g1 = Netlist.add_gate net Cell.And [| a; c0 |] in (* -> 0 *)
  let g2 = Netlist.add_gate net Cell.Or [| a; c0 |] in (* -> a *)
  let g3 = Netlist.add_gate net Cell.Mux [| c1; a; g1 |] in (* -> g1 -> 0 *)
  Netlist.add_output net "y1" g1;
  Netlist.add_output net "y2" g2;
  Netlist.add_output net "y3" g3;
  let opt, report = Synth.optimize net in
  Alcotest.(check bool) "folded some" true (report.Synth.const_folded >= 1);
  (* function preserved *)
  (match Equiv.check net opt with
  | Equiv.Equivalent -> ()
  | Equiv.Different _ -> Alcotest.fail "optimization changed the function");
  (* y1 now driven by a constant *)
  let y1 = List.assoc "y1" (Netlist.outputs opt) in
  Alcotest.(check bool) "y1 const" true
    ((Netlist.node opt y1).Netlist.kind = Netlist.Const false)

let test_synth_buffer_collapse_and_sweep () =
  let net = Netlist.create "s" in
  let a = Netlist.add_input net "a" in
  let b1 = Netlist.add_gate net Cell.Buf [| a |] in
  let b2 = Netlist.add_gate net Cell.Buf [| b1 |] in
  let dead = Netlist.add_gate net Cell.Not [| a |] in
  ignore dead;
  Netlist.add_output net "y" b2;
  let opt, report = Synth.optimize net in
  Alcotest.(check int) "buffers collapsed" 2 report.Synth.buffers_collapsed;
  Alcotest.(check bool) "dead removed" true (report.Synth.dead_removed >= 1);
  Alcotest.(check int) "only input remains" 0 (Stats.of_netlist opt).Stats.gates

let test_synth_preserve () =
  let net = Netlist.create "s" in
  let a = Netlist.add_input net "a" in
  let b1 = Netlist.add_gate net ~name:"keep_me" Cell.Buf [| a |] in
  Netlist.add_output net "y" b1;
  let opt, _ =
    Synth.optimize ~preserve:(fun id -> (Netlist.node net id).Netlist.name = "keep_me") net
  in
  Alcotest.(check bool) "preserved" true (Netlist.find opt "keep_me" <> None)

let synth_preserves_function_law seed =
  let net =
    Generator.generate
      {
        Generator.gen_name = "sf";
        seed;
        n_pi = 5;
        n_po = 4;
        n_ff = 0;
        n_gates = 25;
        depth = 5;
        ff_depth_bias = 0.0;
      }
  in
  (* tie one input to a constant to give the folder something to do *)
  let net = Netlist.copy net in
  let pi = List.hd (Netlist.inputs net) in
  let c = Netlist.add_const net (seed mod 2 = 0) in
  Netlist.replace_uses net ~old_id:pi ~new_id:c;
  let opt, _ = Synth.optimize net in
  Equiv.check net opt = Equiv.Equivalent

(* ----- Placer ----- *)

let test_placer_basic () =
  let net = Benchmarks.tiny () in
  let r1 = Placer.place ~seed:3 net in
  let r2 = Placer.place ~seed:3 net in
  Alcotest.(check bool) "deterministic" true (r1 = r2);
  Alcotest.(check bool) "positive wirelength" true (r1.Placer.hpwl_um > 0.0);
  Alcotest.(check bool) "grid covers cells" true
    (r1.Placer.grid_w * r1.Placer.grid_h >= (Stats.of_netlist net).Stats.cells)

let test_placer_growth () =
  (* a locked netlist needs more area and wire *)
  let net = Benchmarks.tiny () in
  let clock = Sta.clock_for net ~margin:4.5 in
  let d = Insertion.lock ~seed:3 net ~clock_ps:clock ~n_gks:2 in
  let base = Placer.place ~seed:3 net in
  let locked = Placer.place ~seed:3 d.Insertion.lnet in
  Alcotest.(check bool) "locked larger" true
    (locked.Placer.hpwl_um > base.Placer.hpwl_um)

let suites =
  [
    ( "flow.delay_synth",
      [
        tc "profiles" `Quick test_compose_profiles;
        tc "zero target" `Quick test_compose_zero;
        tc "chain delay = STA" `Quick test_chain_builds_delay;
        tc "zero chain" `Quick test_chain_zero_is_identity;
        qcheck "standard accuracy" QCheck.int (compose_accuracy_law `Standard);
        qcheck "buffers-only accuracy" QCheck.int
          (compose_accuracy_law `Buffers_only);
        qcheck "custom accuracy" QCheck.int (compose_accuracy_law `Custom);
      ] );
    ( "flow.synth",
      [
        tc "const folding" `Quick test_synth_const_folding;
        tc "collapse + sweep" `Quick test_synth_buffer_collapse_and_sweep;
        tc "preserve" `Quick test_synth_preserve;
        qcheck ~count:40 "optimization preserves function"
          (QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 500))
          synth_preserves_function_law;
      ] );
    ( "flow.placer",
      [
        tc "basic" `Quick test_placer_basic;
        tc "locked grows" `Quick test_placer_growth;
      ] );
  ]
