(* The bit-parallel evaluation engine and the memoized graph analyses:
   word-lane agreement with the scalar semantics on random circuits, and
   cache invalidation across every mutation class. *)

let tc = Alcotest.test_case

let qcheck ?(count = 100) name arb law = Qc.qcheck ~count name arb law

let seed_arb =
  QCheck.make
    ~print:(fun seed -> Printf.sprintf "circuit seed %d" seed)
    QCheck.Gen.(int_bound 1000)

let generated_circuit seed =
  Generator.generate
    {
      Generator.gen_name = Printf.sprintf "e%d" seed;
      seed;
      n_pi = 4 + (seed mod 5);
      n_po = 2 + (seed mod 3);
      n_ff = seed mod 7;
      n_gates = 20 + (seed mod 40);
      depth = 4 + (seed mod 6);
      ff_depth_bias = 0.4;
    }

(* A random netlist exercising node kinds the generator avoids: LUTs of
   arity 1-3, MUXes, constants and wide gates. *)
let adversarial_circuit seed =
  let rng = Random.State.make [| seed; 0xADE |] in
  let net = Netlist.create (Printf.sprintf "adv%d" seed) in
  let pool = ref [] in
  for i = 0 to 3 + Random.State.int rng 4 do
    pool := Netlist.add_input net (Printf.sprintf "i%d" i) :: !pool
  done;
  pool := Netlist.add_const net true :: Netlist.add_const net false :: !pool;
  let pick () = List.nth !pool (Random.State.int rng (List.length !pool)) in
  for _ = 1 to 25 + Random.State.int rng 25 do
    let id =
      match Random.State.int rng 6 with
      | 0 ->
        let k = 1 + Random.State.int rng 3 in
        let truth =
          Array.init (1 lsl k) (fun _ -> Random.State.bool rng)
        in
        Netlist.add_lut net ~truth (Array.init k (fun _ -> pick ()))
      | 1 -> Netlist.add_gate net Cell.Mux [| pick (); pick (); pick () |]
      | 2 -> Netlist.add_gate net Cell.Not [| pick () |]
      | 3 ->
        let fn = List.nth [ Cell.And; Cell.Or; Cell.Nand; Cell.Nor ]
            (Random.State.int rng 4) in
        let k = 2 + Random.State.int rng 3 in
        Netlist.add_gate net fn (Array.init k (fun _ -> pick ()))
      | 4 ->
        let fn = if Random.State.bool rng then Cell.Xor else Cell.Xnor in
        Netlist.add_gate net fn [| pick (); pick () |]
      | _ -> Netlist.add_gate net Cell.Buf [| pick () |]
    in
    pool := id :: !pool
  done;
  Netlist.add_output net "y" (pick ());
  Netlist.validate net;
  net

(* Reference semantics, independent of the engine: per-call DFS plus
   Cell.eval, exactly the seed implementation of eval_comb. *)
let reference_eval net assignment =
  let n = Netlist.num_nodes net in
  let state = Array.make n 0 in
  let order = ref [] in
  let rec visit id =
    let nd = Netlist.node net id in
    if Netlist.is_comb nd then
      match state.(id) with
      | 2 -> ()
      | 1 -> failwith "cycle"
      | _ ->
        state.(id) <- 1;
        Array.iter visit nd.Netlist.fanins;
        state.(id) <- 2;
        order := id :: !order
  in
  for id = 0 to n - 1 do
    visit id
  done;
  let values = Array.make n false in
  for id = 0 to n - 1 do
    match (Netlist.node net id).Netlist.kind with
    | Netlist.Input | Netlist.Ff -> values.(id) <- assignment id
    | Netlist.Const b -> values.(id) <- b
    | Netlist.Gate _ | Netlist.Lut _ | Netlist.Dead -> ()
  done;
  List.iter
    (fun id ->
      let nd = Netlist.node net id in
      let ins = Array.map (fun f -> values.(f)) nd.Netlist.fanins in
      match nd.Netlist.kind with
      | Netlist.Gate fn -> values.(id) <- Cell.eval fn ins
      | Netlist.Lut truth ->
        let idx = ref 0 in
        Array.iteri (fun i b -> if b then idx := !idx lor (1 lsl i)) ins;
        values.(id) <- truth.(!idx)
      | _ -> assert false)
    (List.rev !order);
  values

(* Word lanes agree bit-for-bit with both the scalar engine path and the
   reference evaluator. *)
let engine_agrees_law mk seed =
  let net = mk seed in
  let n = Netlist.num_nodes net in
  let rng = Random.State.make [| seed; 0x1A |] in
  let w = Netlist.Engine.word_bits in
  let lanes = 1 + Random.State.int rng w in
  let vectors =
    Array.init lanes (fun _ -> Array.init n (fun _ -> Random.State.bool rng))
  in
  let words =
    Array.init n (fun id ->
        let acc = ref 0 in
        Array.iteri (fun l vec -> if vec.(id) then acc := !acc lor (1 lsl l)) vectors;
        !acc)
  in
  let eng = Netlist.Engine.get net in
  let word_values = Netlist.Engine.eval_words eng (Array.get words) in
  Array.to_list vectors
  |> List.mapi (fun l vec -> (l, vec))
  |> List.for_all (fun (l, vec) ->
         let scalar = Netlist.eval_comb net (Array.get vec) in
         let reference = reference_eval net (Array.get vec) in
         let ok = ref true in
         for id = 0 to n - 1 do
           if scalar.(id) <> reference.(id) then ok := false;
           if word_values.(id) land (1 lsl l) <> 0 <> scalar.(id) then ok := false
         done;
         !ok)

let generated_agrees_law = engine_agrees_law generated_circuit
let adversarial_agrees_law = engine_agrees_law adversarial_circuit

(* Multi-word blocks agree with eval_words per word and with the scalar
   engine + reference on sampled lanes, including partial final words. *)
let eval_block_agrees_law mk seed =
  let net = mk seed in
  let rng = Random.State.make [| seed; 0xB10C |] in
  let eng = Netlist.Engine.get net in
  let w = Netlist.Engine.word_bits in
  let srcs = Netlist.Engine.sources eng in
  let n_src = Array.length srcs in
  let slot_of = Netlist.Engine.slot_of_id eng in
  let src_idx = Hashtbl.create 16 in
  Array.iteri (fun i id -> Hashtbl.replace src_idx id i) srcs;
  let n_words = 1 + Random.State.int rng 3 in
  let lanes = 1 + Random.State.int rng (n_words * w) in
  let stim = Array.make (max 1 (n_src * n_words)) 0 in
  for i = 0 to (n_src * n_words) - 1 do
    let wi = i mod n_words in
    let live = max 0 (min w (lanes - (wi * w))) in
    let mask = if live = w then -1 else (1 lsl live) - 1 in
    stim.(i) <- Netlist.Engine.random_word rng land mask
  done;
  let blk =
    Netlist.Engine.eval_block eng ~n_words ~fill:(fun buf ->
        Array.blit stim 0 buf 0 (n_src * n_words))
  in
  let ok = ref true in
  for wi = 0 to n_words - 1 do
    let words =
      Netlist.Engine.eval_words eng (fun id ->
          stim.((Hashtbl.find src_idx id * n_words) + wi))
    in
    Array.iteri
      (fun id s ->
        if s >= 0 && words.(id) <> blk.((s * n_words) + wi) then ok := false)
      slot_of
  done;
  let check_lane l =
    let assignment id =
      let si = Hashtbl.find src_idx id in
      (stim.((si * n_words) + (l / w)) lsr (l mod w)) land 1 = 1
    in
    let scalar = Netlist.Engine.eval eng assignment in
    let reference = reference_eval net assignment in
    Array.iteri
      (fun id s ->
        if s >= 0 then begin
          let bv = (blk.((s * n_words) + (l / w)) lsr (l mod w)) land 1 = 1 in
          if bv <> scalar.(id) || bv <> reference.(id) then ok := false
        end)
      slot_of
  in
  check_lane 0;
  check_lane (lanes - 1);
  check_lane (Random.State.int rng lanes);
  !ok

let generated_block_law = eval_block_agrees_law generated_circuit
let adversarial_block_law = eval_block_agrees_law adversarial_circuit

let test_slot_map () =
  let net = Benchmarks.s27 () in
  let eng = Netlist.Engine.get net in
  let srcs = Netlist.Engine.sources eng in
  let slot_of = Netlist.Engine.slot_of_id eng in
  Array.iteri
    (fun i id -> Alcotest.(check int) "source i occupies slot i" i slot_of.(id))
    srcs;
  let n_slots = Netlist.Engine.n_slots eng in
  let seen = Array.make n_slots false in
  Array.iter
    (fun s ->
      if s >= 0 then begin
        Alcotest.(check bool) "slot in range" true (s < n_slots);
        Alcotest.(check bool) "slot unique" false seen.(s);
        seen.(s) <- true
      end)
    slot_of;
  Array.iteri
    (fun s used ->
      Alcotest.(check bool) (Printf.sprintf "slot %d populated" s) true used)
    seen

let test_scratch_reuse () =
  let net = Benchmarks.s27 () in
  let eng = Netlist.Engine.get net in
  let sc = Netlist.Engine.create_scratch eng in
  let a1 =
    Array.copy (Netlist.Engine.eval_into ~scratch:sc eng (fun id -> id mod 2 = 0))
  in
  ignore (Netlist.Engine.eval_into ~scratch:sc eng (fun _ -> true));
  let a2 = Netlist.Engine.eval_into ~scratch:sc eng (fun id -> id mod 2 = 0) in
  Alcotest.(check bool) "same results across scratch reuse" true (a1 = a2);
  Alcotest.(check bool) "result aliases the scratch buffer" true
    (a2 == Netlist.Engine.eval_into ~scratch:sc eng (fun _ -> false));
  (* a scratch is tied to its engine *)
  let eng2 = Netlist.Engine.get (Benchmarks.s27 ()) in
  (match Netlist.Engine.eval_into ~scratch:sc eng2 (fun _ -> false) with
  | _ -> Alcotest.fail "expected Invalid_argument for foreign scratch"
  | exception Invalid_argument _ -> ());
  (* word and block paths share the scratch and agree *)
  let w1 =
    Array.copy (Netlist.Engine.eval_words_into ~scratch:sc eng (fun _ -> -1))
  in
  let n_src = Array.length (Netlist.Engine.sources eng) in
  let blk =
    Netlist.Engine.eval_block ~scratch:sc eng ~n_words:2 ~fill:(fun buf ->
        Array.fill buf 0 (n_src * 2) (-1))
  in
  for s = 0 to Netlist.Engine.n_slots eng - 1 do
    Alcotest.(check int) "block word 0 = eval_words" w1.(s) blk.(s * 2);
    Alcotest.(check int) "block word 1 = eval_words" w1.(s) blk.((s * 2) + 1)
  done

let popcount_naive w =
  let c = ref 0 in
  for i = 0 to Sys.int_size - 1 do
    if (w lsr i) land 1 = 1 then incr c
  done;
  !c

let popcount_swar_law seed =
  let rng = Random.State.make [| seed; 0xC0DE |] in
  List.for_all
    (fun w -> Netlist.Engine.popcount w = popcount_naive w)
    (0 :: -1 :: 1 :: max_int :: min_int
    :: List.init 48 (fun i ->
           let r = Int64.to_int (Random.State.bits64 rng) in
           (* mix sparse, dense and shifted patterns *)
           match i mod 3 with
           | 0 -> r
           | 1 -> r land (r lsl 1)
           | _ -> r lor (r lsr 7)))

let test_engine_memoized () =
  let net = Benchmarks.s27 () in
  let e1 = Netlist.Engine.get net in
  let e2 = Netlist.Engine.get net in
  Alcotest.(check bool) "same engine while unmutated" true (e1 == e2);
  let topo1 = Netlist.comb_topo_order net in
  let topo2 = Netlist.comb_topo_order net in
  Alcotest.(check bool) "same topo list while unmutated" true (topo1 == topo2);
  let fan1 = Netlist.fanout_table net in
  let fan2 = Netlist.fanout_table net in
  Alcotest.(check bool) "same fanout table while unmutated" true (fan1 == fan2);
  let lv1 = Netlist.levels net in
  let lv2 = Netlist.levels net in
  Alcotest.(check bool) "same levels while unmutated" true (lv1 == lv2)

let test_cache_invalidation_add_rewire () =
  let net = Netlist.create "inv" in
  let a = Netlist.add_input net "a" in
  let b = Netlist.add_input net "b" in
  let g = Netlist.add_gate net Cell.And [| a; b |] in
  Netlist.add_output net "y" g;
  let gen0 = Netlist.generation net in
  let v0 = Netlist.eval_comb net (fun _ -> true) in
  Alcotest.(check bool) "and(1,1)" true v0.(g);
  let topo0 = Netlist.comb_topo_order net in
  (* add: topo and engine must grow *)
  let inv = Netlist.add_gate net Cell.Not [| g |] in
  Alcotest.(check bool) "generation bumped by add" true
    (Netlist.generation net > gen0);
  let topo1 = Netlist.comb_topo_order net in
  Alcotest.(check int) "topo grew" (List.length topo0 + 1) (List.length topo1);
  let v1 = Netlist.eval_comb net (fun _ -> true) in
  Alcotest.(check bool) "new gate evaluated" false v1.(inv);
  (* rewire: same ids, different function *)
  Netlist.set_output_driver net "y" inv;
  let c0 = Netlist.add_const net false in
  Netlist.set_fanin net ~node_id:g ~pin:1 ~driver:c0;
  let v2 = Netlist.eval_comb net (fun _ -> true) in
  Alcotest.(check bool) "and(1,const0) = 0 after rewire" false v2.(g);
  Alcotest.(check bool) "not propagates after rewire" true v2.(inv);
  (* levels follow the rewire *)
  Alcotest.(check int) "inv level" 2 (Netlist.levels net).(inv);
  (* fanout reflects the rewire *)
  let fans = Netlist.fanout_table net in
  Alcotest.(check bool) "const0 feeds g" true (List.mem (g, 1) fans.(c0))

let test_cache_invalidation_widen_kill_compact () =
  let net = Netlist.create "wkc" in
  let a = Netlist.add_input net "a" in
  let b = Netlist.add_input net "b" in
  let c = Netlist.add_input net "c" in
  let g = Netlist.add_gate net Cell.And [| a; b |] in
  let dead = Netlist.add_gate net Cell.Not [| a |] in
  Netlist.add_output net "y" g;
  let v0 = Netlist.eval_comb net (fun id -> id <> c) in
  Alcotest.(check bool) "before widen" true v0.(g);
  Netlist.widen_gate net ~node_id:g ~extra_driver:c;
  let v1 = Netlist.eval_comb net (fun id -> id <> c) in
  Alcotest.(check bool) "widened gate sees new fanin" false v1.(g);
  Netlist.kill net dead;
  let v2 = Netlist.eval_comb net (fun id -> id <> c) in
  Alcotest.(check bool) "dead node reads false" false v2.(dead);
  Alcotest.(check int) "topo omits the dead node" 1
    (List.length (Netlist.comb_topo_order net));
  let net', remap = Netlist.compact net in
  let v3 = Netlist.eval_comb net' (fun id -> id <> remap.(c)) in
  Alcotest.(check bool) "compacted netlist evaluates" false v3.(remap.(g))

let test_run_batch_matches_run () =
  let net = Benchmarks.s27 () in
  let cycles = 8 in
  let lanes = 5 in
  let rng = Random.State.make [| 0x5B |] in
  let stim =
    Array.init cycles (fun _ ->
        Array.init (Netlist.num_nodes net) (fun _ ->
            Random.State.int rng (1 lsl lanes)))
  in
  let batch =
    Cycle_sim.run_batch net ~cycles ~stimulus:(fun cy id -> stim.(cy).(id))
  in
  for l = 0 to lanes - 1 do
    let scalar =
      Cycle_sim.run net ~cycles ~stimulus:(fun cy id ->
          stim.(cy).(id) land (1 lsl l) <> 0)
    in
    Array.iteri
      (fun cy pos ->
        List.iter
          (fun (po, v) ->
            let word = List.assoc po batch.(cy) in
            Alcotest.(check bool)
              (Printf.sprintf "cycle %d lane %d %s" cy l po)
              v
              (word land (1 lsl l) <> 0))
          pos)
      scalar
  done

let test_comb_outputs_batch () =
  let net = Netlist.create "cb" in
  let a = Netlist.add_input net "a" in
  let b = Netlist.add_input net "b" in
  let x = Netlist.add_gate net Cell.Xor [| a; b |] in
  Netlist.add_output net "x" x;
  (* lanes: (a,b) = 00 01 10 11 *)
  let words = [ (a, 0b1100); (b, 0b1010) ] in
  let outs = Cycle_sim.comb_outputs_batch net ~inputs:(fun id -> List.assoc id words) in
  Alcotest.(check int) "xor truth column" 0b0110 (List.assoc "x" outs land 0b1111)

let test_dense_ff_state () =
  let net = Benchmarks.s27 () in
  let sim = Cycle_sim.create ~init:(fun _ -> true) net in
  let st = Cycle_sim.state sim in
  Alcotest.(check int) "three ffs" 3 (List.length st);
  List.iter (fun (_, v) -> Alcotest.(check bool) "init honoured" true v) st;
  ignore (Cycle_sim.step sim ~inputs:(fun _ -> false));
  let ids = List.map fst (Cycle_sim.state sim) in
  Alcotest.(check (list int)) "ids stable across steps" (List.map fst st) ids

let test_popcount_random_word () =
  Alcotest.(check int) "popcount 0" 0 (Netlist.Engine.popcount 0);
  Alcotest.(check int) "popcount -1 = word width" Sys.int_size
    (Netlist.Engine.popcount (-1));
  Alcotest.(check int) "popcount 0b1011" 3 (Netlist.Engine.popcount 0b1011);
  let rng = Random.State.make [| 1 |] in
  let w = Netlist.Engine.random_word rng in
  Alcotest.(check bool) "random word within word_bits" true
    (Netlist.Engine.word_bits = Sys.int_size || w lsr Netlist.Engine.word_bits = 0)

let parallel_map_law seed =
  let xs = List.init (seed mod 50) (fun i -> i + seed) in
  Parallel.map ~domains:4 (fun x -> x * x) xs = List.map (fun x -> x * x) xs

let test_parallel_map_exception () =
  match Parallel.map ~domains:3 (fun x -> if x = 7 then failwith "boom" else x)
          [ 1; 7; 9 ]
  with
  | _ -> Alcotest.fail "expected exception"
  | exception Failure m -> Alcotest.(check string) "first error" "boom" m

let suites =
  [
    ( "engine.eval",
      [
        qcheck ~count:60 "generated circuits: lanes = scalar = reference"
          seed_arb generated_agrees_law;
        qcheck ~count:60 "LUT/MUX/const circuits: lanes = scalar = reference"
          seed_arb adversarial_agrees_law;
        qcheck ~count:40 "generated circuits: block = words = scalar = reference"
          seed_arb generated_block_law;
        qcheck ~count:40
          "LUT/MUX/const circuits: block = words = scalar = reference" seed_arb
          adversarial_block_law;
        tc "slot map: dense, unique, sources first" `Quick test_slot_map;
        tc "scratch reuse + ownership" `Quick test_scratch_reuse;
        tc "popcount + random_word" `Quick test_popcount_random_word;
        qcheck ~count:50 "SWAR popcount = naive bit loop" seed_arb
          popcount_swar_law;
      ] );
    ( "engine.caching",
      [
        tc "analyses memoized between mutations" `Quick test_engine_memoized;
        tc "invalidated by add/rewire" `Quick test_cache_invalidation_add_rewire;
        tc "invalidated by widen/kill/compact" `Quick
          test_cache_invalidation_widen_kill_compact;
      ] );
    ( "engine.cycle_sim",
      [
        tc "run_batch lanes = scalar run" `Quick test_run_batch_matches_run;
        tc "comb_outputs_batch" `Quick test_comb_outputs_batch;
        tc "dense ff state" `Quick test_dense_ff_state;
      ] );
    ( "engine.parallel",
      [
        qcheck ~count:20 "map = List.map" seed_arb parallel_map_law;
        tc "map re-raises" `Quick test_parallel_map_exception;
      ] );
  ]
