(* The bit-parallel evaluation engine and the memoized graph analyses:
   word-lane agreement with the scalar semantics on random circuits, and
   cache invalidation across every mutation class. *)

let tc = Alcotest.test_case

let qcheck ?(count = 100) name arb law = Qc.qcheck ~count name arb law

let seed_arb =
  QCheck.make
    ~print:(fun seed -> Printf.sprintf "circuit seed %d" seed)
    QCheck.Gen.(int_bound 1000)

let generated_circuit seed =
  Generator.generate
    {
      Generator.gen_name = Printf.sprintf "e%d" seed;
      seed;
      n_pi = 4 + (seed mod 5);
      n_po = 2 + (seed mod 3);
      n_ff = seed mod 7;
      n_gates = 20 + (seed mod 40);
      depth = 4 + (seed mod 6);
      ff_depth_bias = 0.4;
    }

(* A random netlist exercising node kinds the generator avoids: LUTs of
   arity 1-3, MUXes, constants and wide gates. *)
let adversarial_circuit seed =
  let rng = Random.State.make [| seed; 0xADE |] in
  let net = Netlist.create (Printf.sprintf "adv%d" seed) in
  let pool = ref [] in
  for i = 0 to 3 + Random.State.int rng 4 do
    pool := Netlist.add_input net (Printf.sprintf "i%d" i) :: !pool
  done;
  pool := Netlist.add_const net true :: Netlist.add_const net false :: !pool;
  let pick () = List.nth !pool (Random.State.int rng (List.length !pool)) in
  for _ = 1 to 25 + Random.State.int rng 25 do
    let id =
      match Random.State.int rng 6 with
      | 0 ->
        let k = 1 + Random.State.int rng 3 in
        let truth =
          Array.init (1 lsl k) (fun _ -> Random.State.bool rng)
        in
        Netlist.add_lut net ~truth (Array.init k (fun _ -> pick ()))
      | 1 -> Netlist.add_gate net Cell.Mux [| pick (); pick (); pick () |]
      | 2 -> Netlist.add_gate net Cell.Not [| pick () |]
      | 3 ->
        let fn = List.nth [ Cell.And; Cell.Or; Cell.Nand; Cell.Nor ]
            (Random.State.int rng 4) in
        let k = 2 + Random.State.int rng 3 in
        Netlist.add_gate net fn (Array.init k (fun _ -> pick ()))
      | 4 ->
        let fn = if Random.State.bool rng then Cell.Xor else Cell.Xnor in
        Netlist.add_gate net fn [| pick (); pick () |]
      | _ -> Netlist.add_gate net Cell.Buf [| pick () |]
    in
    pool := id :: !pool
  done;
  Netlist.add_output net "y" (pick ());
  Netlist.validate net;
  net

(* Reference semantics, independent of the engine: per-call DFS plus
   Cell.eval, exactly the seed implementation of eval_comb. *)
let reference_eval net assignment =
  let n = Netlist.num_nodes net in
  let state = Array.make n 0 in
  let order = ref [] in
  let rec visit id =
    let nd = Netlist.node net id in
    if Netlist.is_comb nd then
      match state.(id) with
      | 2 -> ()
      | 1 -> failwith "cycle"
      | _ ->
        state.(id) <- 1;
        Array.iter visit nd.Netlist.fanins;
        state.(id) <- 2;
        order := id :: !order
  in
  for id = 0 to n - 1 do
    visit id
  done;
  let values = Array.make n false in
  for id = 0 to n - 1 do
    match (Netlist.node net id).Netlist.kind with
    | Netlist.Input | Netlist.Ff -> values.(id) <- assignment id
    | Netlist.Const b -> values.(id) <- b
    | Netlist.Gate _ | Netlist.Lut _ | Netlist.Dead -> ()
  done;
  List.iter
    (fun id ->
      let nd = Netlist.node net id in
      let ins = Array.map (fun f -> values.(f)) nd.Netlist.fanins in
      match nd.Netlist.kind with
      | Netlist.Gate fn -> values.(id) <- Cell.eval fn ins
      | Netlist.Lut truth ->
        let idx = ref 0 in
        Array.iteri (fun i b -> if b then idx := !idx lor (1 lsl i)) ins;
        values.(id) <- truth.(!idx)
      | _ -> assert false)
    (List.rev !order);
  values

(* Word lanes agree bit-for-bit with both the scalar engine path and the
   reference evaluator. *)
let engine_agrees_law mk seed =
  let net = mk seed in
  let n = Netlist.num_nodes net in
  let rng = Random.State.make [| seed; 0x1A |] in
  let w = Netlist.Engine.word_bits in
  let lanes = 1 + Random.State.int rng w in
  let vectors =
    Array.init lanes (fun _ -> Array.init n (fun _ -> Random.State.bool rng))
  in
  let words =
    Array.init n (fun id ->
        let acc = ref 0 in
        Array.iteri (fun l vec -> if vec.(id) then acc := !acc lor (1 lsl l)) vectors;
        !acc)
  in
  let eng = Netlist.Engine.get net in
  let word_values = Netlist.Engine.eval_words eng (Array.get words) in
  Array.to_list vectors
  |> List.mapi (fun l vec -> (l, vec))
  |> List.for_all (fun (l, vec) ->
         let scalar = Netlist.eval_comb net (Array.get vec) in
         let reference = reference_eval net (Array.get vec) in
         let ok = ref true in
         for id = 0 to n - 1 do
           if scalar.(id) <> reference.(id) then ok := false;
           if word_values.(id) land (1 lsl l) <> 0 <> scalar.(id) then ok := false
         done;
         !ok)

let generated_agrees_law = engine_agrees_law generated_circuit
let adversarial_agrees_law = engine_agrees_law adversarial_circuit

let test_engine_memoized () =
  let net = Benchmarks.s27 () in
  let e1 = Netlist.Engine.get net in
  let e2 = Netlist.Engine.get net in
  Alcotest.(check bool) "same engine while unmutated" true (e1 == e2);
  let topo1 = Netlist.comb_topo_order net in
  let topo2 = Netlist.comb_topo_order net in
  Alcotest.(check bool) "same topo list while unmutated" true (topo1 == topo2);
  let fan1 = Netlist.fanout_table net in
  let fan2 = Netlist.fanout_table net in
  Alcotest.(check bool) "same fanout table while unmutated" true (fan1 == fan2);
  let lv1 = Netlist.levels net in
  let lv2 = Netlist.levels net in
  Alcotest.(check bool) "same levels while unmutated" true (lv1 == lv2)

let test_cache_invalidation_add_rewire () =
  let net = Netlist.create "inv" in
  let a = Netlist.add_input net "a" in
  let b = Netlist.add_input net "b" in
  let g = Netlist.add_gate net Cell.And [| a; b |] in
  Netlist.add_output net "y" g;
  let gen0 = Netlist.generation net in
  let v0 = Netlist.eval_comb net (fun _ -> true) in
  Alcotest.(check bool) "and(1,1)" true v0.(g);
  let topo0 = Netlist.comb_topo_order net in
  (* add: topo and engine must grow *)
  let inv = Netlist.add_gate net Cell.Not [| g |] in
  Alcotest.(check bool) "generation bumped by add" true
    (Netlist.generation net > gen0);
  let topo1 = Netlist.comb_topo_order net in
  Alcotest.(check int) "topo grew" (List.length topo0 + 1) (List.length topo1);
  let v1 = Netlist.eval_comb net (fun _ -> true) in
  Alcotest.(check bool) "new gate evaluated" false v1.(inv);
  (* rewire: same ids, different function *)
  Netlist.set_output_driver net "y" inv;
  let c0 = Netlist.add_const net false in
  Netlist.set_fanin net ~node_id:g ~pin:1 ~driver:c0;
  let v2 = Netlist.eval_comb net (fun _ -> true) in
  Alcotest.(check bool) "and(1,const0) = 0 after rewire" false v2.(g);
  Alcotest.(check bool) "not propagates after rewire" true v2.(inv);
  (* levels follow the rewire *)
  Alcotest.(check int) "inv level" 2 (Netlist.levels net).(inv);
  (* fanout reflects the rewire *)
  let fans = Netlist.fanout_table net in
  Alcotest.(check bool) "const0 feeds g" true (List.mem (g, 1) fans.(c0))

let test_cache_invalidation_widen_kill_compact () =
  let net = Netlist.create "wkc" in
  let a = Netlist.add_input net "a" in
  let b = Netlist.add_input net "b" in
  let c = Netlist.add_input net "c" in
  let g = Netlist.add_gate net Cell.And [| a; b |] in
  let dead = Netlist.add_gate net Cell.Not [| a |] in
  Netlist.add_output net "y" g;
  let v0 = Netlist.eval_comb net (fun id -> id <> c) in
  Alcotest.(check bool) "before widen" true v0.(g);
  Netlist.widen_gate net ~node_id:g ~extra_driver:c;
  let v1 = Netlist.eval_comb net (fun id -> id <> c) in
  Alcotest.(check bool) "widened gate sees new fanin" false v1.(g);
  Netlist.kill net dead;
  let v2 = Netlist.eval_comb net (fun id -> id <> c) in
  Alcotest.(check bool) "dead node reads false" false v2.(dead);
  Alcotest.(check int) "topo omits the dead node" 1
    (List.length (Netlist.comb_topo_order net));
  let net', remap = Netlist.compact net in
  let v3 = Netlist.eval_comb net' (fun id -> id <> remap.(c)) in
  Alcotest.(check bool) "compacted netlist evaluates" false v3.(remap.(g))

let test_run_batch_matches_run () =
  let net = Benchmarks.s27 () in
  let cycles = 8 in
  let lanes = 5 in
  let rng = Random.State.make [| 0x5B |] in
  let stim =
    Array.init cycles (fun _ ->
        Array.init (Netlist.num_nodes net) (fun _ ->
            Random.State.int rng (1 lsl lanes)))
  in
  let batch =
    Cycle_sim.run_batch net ~cycles ~stimulus:(fun cy id -> stim.(cy).(id))
  in
  for l = 0 to lanes - 1 do
    let scalar =
      Cycle_sim.run net ~cycles ~stimulus:(fun cy id ->
          stim.(cy).(id) land (1 lsl l) <> 0)
    in
    Array.iteri
      (fun cy pos ->
        List.iter
          (fun (po, v) ->
            let word = List.assoc po batch.(cy) in
            Alcotest.(check bool)
              (Printf.sprintf "cycle %d lane %d %s" cy l po)
              v
              (word land (1 lsl l) <> 0))
          pos)
      scalar
  done

let test_comb_outputs_batch () =
  let net = Netlist.create "cb" in
  let a = Netlist.add_input net "a" in
  let b = Netlist.add_input net "b" in
  let x = Netlist.add_gate net Cell.Xor [| a; b |] in
  Netlist.add_output net "x" x;
  (* lanes: (a,b) = 00 01 10 11 *)
  let words = [ (a, 0b1100); (b, 0b1010) ] in
  let outs = Cycle_sim.comb_outputs_batch net ~inputs:(fun id -> List.assoc id words) in
  Alcotest.(check int) "xor truth column" 0b0110 (List.assoc "x" outs land 0b1111)

let test_dense_ff_state () =
  let net = Benchmarks.s27 () in
  let sim = Cycle_sim.create ~init:(fun _ -> true) net in
  let st = Cycle_sim.state sim in
  Alcotest.(check int) "three ffs" 3 (List.length st);
  List.iter (fun (_, v) -> Alcotest.(check bool) "init honoured" true v) st;
  ignore (Cycle_sim.step sim ~inputs:(fun _ -> false));
  let ids = List.map fst (Cycle_sim.state sim) in
  Alcotest.(check (list int)) "ids stable across steps" (List.map fst st) ids

let test_popcount_random_word () =
  Alcotest.(check int) "popcount 0" 0 (Netlist.Engine.popcount 0);
  Alcotest.(check int) "popcount -1 = word width" Sys.int_size
    (Netlist.Engine.popcount (-1));
  Alcotest.(check int) "popcount 0b1011" 3 (Netlist.Engine.popcount 0b1011);
  let rng = Random.State.make [| 1 |] in
  let w = Netlist.Engine.random_word rng in
  Alcotest.(check bool) "random word within word_bits" true
    (Netlist.Engine.word_bits = Sys.int_size || w lsr Netlist.Engine.word_bits = 0)

let parallel_map_law seed =
  let xs = List.init (seed mod 50) (fun i -> i + seed) in
  Parallel.map ~domains:4 (fun x -> x * x) xs = List.map (fun x -> x * x) xs

let test_parallel_map_exception () =
  match Parallel.map ~domains:3 (fun x -> if x = 7 then failwith "boom" else x)
          [ 1; 7; 9 ]
  with
  | _ -> Alcotest.fail "expected exception"
  | exception Failure m -> Alcotest.(check string) "first error" "boom" m

let suites =
  [
    ( "engine.eval",
      [
        qcheck ~count:60 "generated circuits: lanes = scalar = reference"
          seed_arb generated_agrees_law;
        qcheck ~count:60 "LUT/MUX/const circuits: lanes = scalar = reference"
          seed_arb adversarial_agrees_law;
        tc "popcount + random_word" `Quick test_popcount_random_word;
      ] );
    ( "engine.caching",
      [
        tc "analyses memoized between mutations" `Quick test_engine_memoized;
        tc "invalidated by add/rewire" `Quick test_cache_invalidation_add_rewire;
        tc "invalidated by widen/kill/compact" `Quick
          test_cache_invalidation_widen_kill_compact;
      ] );
    ( "engine.cycle_sim",
      [
        tc "run_batch lanes = scalar run" `Quick test_run_batch_matches_run;
        tc "comb_outputs_batch" `Quick test_comb_outputs_batch;
        tc "dense ff state" `Quick test_dense_ff_state;
      ] );
    ( "engine.parallel",
      [
        qcheck ~count:20 "map = List.map" seed_arb parallel_map_law;
        tc "map re-raises" `Quick test_parallel_map_exception;
      ] );
  ]
