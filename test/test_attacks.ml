(* Tests for the attack suite: SAT attack, signal probabilities, removal
   attacks, brute force, the two-frame TCF variant and the enhanced
   removal pipeline — including every security claim of the paper. *)

let tc = Alcotest.test_case

let qcheck ?(count = 20) name arb law = Qc.qcheck ~count name arb law

let seed_arb = QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 300)

let comb_circuit seed =
  let net =
    Generator.generate
      {
        Generator.gen_name = "at";
        seed;
        n_pi = 6;
        n_po = 4;
        n_ff = 6;
        n_gates = 35;
        depth = 5;
        ff_depth_bias = 0.3;
      }
  in
  fst (Combinationalize.run net)

(* ----- oracle ----- *)

let test_oracle () =
  let net = Netlist.create "o" in
  let a = Netlist.add_input net "a" in
  let b = Netlist.add_input net "b" in
  let g = Netlist.add_gate net Cell.And [| a; b |] in
  Netlist.add_output net "y" g;
  let oracle = Sat_attack.oracle_of_netlist net in
  Alcotest.(check (list (pair string bool))) "11" [ ("y", true) ]
    (oracle [ ("a", true); ("b", true) ]);
  (* strict by default: underqueries and mistyped names raise *)
  Alcotest.check_raises "unassigned input raises"
    (Invalid_argument
       "Oracle.query: no value for input \"b\" of netlist o (use \
        ~partial:true to read missing inputs as false)") (fun () ->
      ignore (oracle [ ("a", true) ]));
  Alcotest.check_raises "unknown name raises"
    (Invalid_argument
       "Oracle.query: unknown input \"bb\" for netlist o (use ~partial:true \
        to ignore stray names)") (fun () ->
      ignore (oracle [ ("a", true); ("bb", true) ]));
  (* the escape hatch restores the permissive semantics *)
  let permissive = Sat_attack.oracle_of_netlist ~partial:true net in
  Alcotest.(check (list (pair string bool))) "unmentioned reads false"
    [ ("y", false) ]
    (permissive [ ("a", true); ("stray", true) ])

(* ----- SAT attack ----- *)

let sat_recovers_xor_law seed =
  let comb = comb_circuit seed in
  let lk = Xor_lock.lock ~seed comb ~n_keys:8 in
  let oracle = Sat_attack.oracle_of_netlist comb in
  match
    (Sat_attack.run ~locked:lk.Locked.net ~key_inputs:lk.Locked.key_inputs
       ~oracle ())
      .Sat_attack.status
  with
  | Sat_attack.Key_recovered k ->
    (* recovered key need not equal the inserted one, but must be
       functionally correct *)
    Equiv.check ~fixed_b:k comb lk.Locked.net = Equiv.Equivalent
  | Sat_attack.Unsat_at_first_iteration _ | Sat_attack.Budget_exhausted -> false

let sat_recovers_mux_law seed =
  let comb = comb_circuit (seed + 1) in
  let lk = Mux_lock.lock ~seed comb ~n_keys:6 in
  let oracle = Sat_attack.oracle_of_netlist comb in
  match
    (Sat_attack.run ~locked:lk.Locked.net ~key_inputs:lk.Locked.key_inputs
       ~oracle ())
      .Sat_attack.status
  with
  | Sat_attack.Key_recovered k ->
    Sat_attack.verify_key ~locked:lk.Locked.net
      ~key_inputs:lk.Locked.key_inputs ~oracle k
    = 0
  | Sat_attack.Unsat_at_first_iteration _ | Sat_attack.Budget_exhausted -> false

let test_sat_attack_budget () =
  let comb = comb_circuit 7 in
  let lk = Sarlock.lock ~seed:7 comb ~n_keys:8 in
  let oracle = Sat_attack.oracle_of_netlist comb in
  let o =
    Sat_attack.run ~max_iterations:5 ~locked:lk.Locked.net
      ~key_inputs:lk.Locked.key_inputs ~oracle ()
  in
  Alcotest.(check bool) "budget exhausted" true
    (o.Sat_attack.status = Sat_attack.Budget_exhausted);
  Alcotest.(check int) "iterations = budget" 5 o.Sat_attack.iterations

let test_sat_attack_guards () =
  let net = Benchmarks.s27 () in
  let oracle = Sat_attack.oracle_of_netlist net in
  Alcotest.(check bool) "rejects sequential" true
    (match Sat_attack.run ~locked:net ~key_inputs:[] ~oracle () with
    | _ -> false
    | exception Invalid_argument _ -> true);
  let comb, _ = Combinationalize.run net in
  Alcotest.(check bool) "rejects unknown key" true
    (match Sat_attack.run ~locked:comb ~key_inputs:[ "nope" ] ~oracle () with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* The paper's SARLock claim: the attack needs one DIP per wrong key. *)
let test_sarlock_iteration_count () =
  let comb = comb_circuit 21 in
  let n_keys = 5 in
  let lk = Sarlock.lock ~seed:21 comb ~n_keys in
  let oracle = Sat_attack.oracle_of_netlist comb in
  let o =
    Sat_attack.run ~locked:lk.Locked.net ~key_inputs:lk.Locked.key_inputs
      ~oracle ()
  in
  (* 2^n - 1 wrong keys, each eliminated by (at least) one DIP; allow a
     little slack for DIPs that eliminate none *)
  Alcotest.(check bool)
    (Printf.sprintf "iterations %d ~ 2^%d" o.Sat_attack.iterations n_keys)
    true
    (o.Sat_attack.iterations >= (1 lsl n_keys) - 1
    && o.Sat_attack.iterations <= (1 lsl n_keys) + 4)

(* The headline claim: GK-locked designs give UNSAT at the first DIP
   search and the leftover key is wrong on the real chip. *)
let gk_unsat_at_first_law seed =
  let net =
    Generator.generate
      {
        Generator.gen_name = "gku";
        seed = seed + 2000;
        n_pi = 5;
        n_po = 4;
        n_ff = 6;
        n_gates = 30;
        depth = 6;
        ff_depth_bias = 0.2;
      }
  in
  let clock_ps = max (Sta.clock_for net ~margin:1.2) 2600 in
  match Insertion.lock ~seed net ~clock_ps ~n_gks:2 with
  | exception Invalid_argument _ -> true
  | d ->
    let stripped, keys = Insertion.strip_keygens d in
    let locked_comb, _ = Combinationalize.run stripped in
    let oracle_comb, _ = Combinationalize.run net in
    let oracle = Sat_attack.oracle_of_netlist oracle_comb in
    (match
       (Sat_attack.run ~locked:locked_comb ~key_inputs:keys ~oracle ())
         .Sat_attack.status
     with
    | Sat_attack.Unsat_at_first_iteration k ->
      Sat_attack.verify_key ~locked:locked_comb ~key_inputs:keys ~oracle k > 0
    | Sat_attack.Key_recovered _ | Sat_attack.Budget_exhausted -> false)

(* ----- Signal probabilities ----- *)

let test_signal_prob_basics () =
  let net = Netlist.create "p" in
  let a = Netlist.add_input net "a" in
  let b = Netlist.add_input net "b" in
  let x = Netlist.add_gate net Cell.Xor [| a; b |] in
  let an = Netlist.add_gate net Cell.And [| a; b |] in
  let c = Netlist.add_const net true in
  let g = Netlist.add_gate net Cell.And [| x; c |] in
  Netlist.add_output net "x" g;
  Netlist.add_output net "a" an;
  let probs = Signal_prob.estimate ~samples:4096 net in
  Alcotest.(check bool) "xor ~ 0.5" true (abs_float (probs.(x) -. 0.5) < 0.05);
  Alcotest.(check bool) "and ~ 0.25" true (abs_float (probs.(an) -. 0.25) < 0.05);
  Alcotest.(check bool) "const = 1" true (probs.(c) = 1.0)

let test_signal_prob_skew_finds_sarlock () =
  let comb = comb_circuit 31 in
  let lk = Sarlock.lock ~seed:31 comb ~n_keys:7 in
  let probs = Signal_prob.estimate ~samples:4096 lk.Locked.net in
  let flip = Option.get (Netlist.find lk.Locked.net "sar_flip") in
  let skewed = Signal_prob.skewed ~eps:0.05 lk.Locked.net probs in
  Alcotest.(check bool) "flip is skewed" true
    (List.exists (fun (id, _) -> id = flip) skewed)

(* ----- Removal attacks ----- *)

let removal_kills_sarlock_law seed =
  let comb = comb_circuit (seed + 40) in
  let lk = Sarlock.lock ~seed comb ~n_keys:7 in
  let oracle = Sat_attack.oracle_of_netlist ~partial:true comb in
  let o = Removal_attack.run lk.Locked.net ~oracle in
  o.Removal_attack.success

let test_removal_kills_antisat () =
  let comb = comb_circuit 44 in
  let lk = Antisat.lock ~seed:44 comb ~n:7 in
  let oracle = Sat_attack.oracle_of_netlist ~partial:true comb in
  let o = Removal_attack.run lk.Locked.net ~oracle in
  Alcotest.(check bool) "success" true o.Removal_attack.success;
  match o.Removal_attack.restored with
  | Some restored ->
    (* the restored netlist is functionally the original *)
    Alcotest.(check bool) "agrees on samples" true
      (Sat_attack.verify_key ~locked:restored ~key_inputs:[] ~oracle [] = 0)
  | None -> Alcotest.fail "no restored netlist"

let test_removal_fails_on_xor () =
  (* conventional key-gates have no skewed security structure to excise *)
  let comb = comb_circuit 45 in
  let lk = Xor_lock.lock ~seed:45 comb ~n_keys:8 in
  let oracle = Sat_attack.oracle_of_netlist ~partial:true comb in
  let o = Removal_attack.run lk.Locked.net ~oracle in
  Alcotest.(check bool) "no easy removal" false o.Removal_attack.success

let test_tdk_strip_then_sat () =
  let net = Benchmarks.tiny () in
  let clock = Sta.clock_for net ~margin:2.0 in
  let tdk = Tdk.lock ~seed:5 net ~clock_ps:clock ~n_sites:3 in
  let stripped = Removal_attack.strip_tdbs tdk in
  (* the TDB delay chains are gone *)
  Alcotest.(check bool) "smaller" true
    ((Stats.of_netlist stripped.Locked.net).Stats.cells
    < (Stats.of_netlist tdk.Tdk.locked.Locked.net).Stats.cells);
  Alcotest.(check int) "functional keys only" 3
    (List.length stripped.Locked.key_inputs);
  let comb, _ = Combinationalize.run net in
  let tcomb, _ = Combinationalize.run stripped.Locked.net in
  let oracle = Sat_attack.oracle_of_netlist comb in
  match
    (Sat_attack.run ~locked:tcomb ~key_inputs:stripped.Locked.key_inputs
       ~oracle ())
      .Sat_attack.status
  with
  | Sat_attack.Key_recovered k ->
    Alcotest.(check int) "decrypted" 0
      (Sat_attack.verify_key ~locked:tcomb
         ~key_inputs:stripped.Locked.key_inputs ~oracle k)
  | Sat_attack.Unsat_at_first_iteration _ | Sat_attack.Budget_exhausted ->
    Alcotest.fail "stripped TDK should fall to SAT"

let test_guess_gk () =
  (* removal vs GK: enumerate buffer/inverter replacements *)
  let net = Benchmarks.tiny () in
  let clock = Sta.clock_for net ~margin:4.5 in
  let d = Insertion.lock ~seed:3 net ~clock_ps:clock ~n_gks:2 in
  let stripped, _keys = Insertion.strip_keygens d in
  let locked_comb, _ = Combinationalize.run stripped in
  let located = Enhanced_removal.locate locked_comb in
  let gks =
    List.map (fun g -> (g.Enhanced_removal.mux, g.Enhanced_removal.x)) located
  in
  let oracle_comb, _ = Combinationalize.run net in
  let oracle = Sat_attack.oracle_of_netlist ~partial:true oracle_comb in
  let o = Removal_attack.guess_gk locked_comb ~gks ~oracle in
  Alcotest.(check int) "search space" 4 o.Removal_attack.total_guesses;
  (match o.Removal_attack.recovered with
  | Some _ -> ()
  | None -> Alcotest.fail "some replacement must match the chip");
  (* the matching replacement is all-buffers (glitch-time behaviour) *)
  Alcotest.(check int) "buffers found last in enumeration order"
    o.Removal_attack.total_guesses o.Removal_attack.guesses_tried

(* ----- Brute force ----- *)

let test_brute_force () =
  let comb = comb_circuit 50 in
  let lk = Xor_lock.lock ~seed:50 comb ~n_keys:5 in
  let oracle = Sat_attack.oracle_of_netlist comb in
  let o =
    Brute_force.run ~locked:lk.Locked.net ~key_inputs:lk.Locked.key_inputs
      ~oracle ()
  in
  match o.Brute_force.found with
  | Some k ->
    Alcotest.(check bool) "consistent" true
      (Sat_attack.verify_key ~locked:lk.Locked.net
         ~key_inputs:lk.Locked.key_inputs ~oracle k
      = 0)
  | None -> Alcotest.fail "brute force must find the key"

(* ----- TCF two-frame ----- *)

let test_tcf_unroll () =
  let comb = comb_circuit 55 in
  let lk = Xor_lock.lock ~seed:55 comb ~n_keys:4 in
  let two = Tcf.unroll lk.Locked.net ~key_inputs:lk.Locked.key_inputs in
  let n_x = List.length (Netlist.inputs lk.Locked.net) - 4 in
  Alcotest.(check int) "inputs doubled (keys shared)"
    ((2 * n_x) + 4)
    (List.length (Netlist.inputs two));
  Alcotest.(check int) "outputs doubled"
    (2 * List.length (Netlist.outputs lk.Locked.net))
    (List.length (Netlist.outputs two))

let test_tcf_recovers_xor () =
  let comb = comb_circuit 56 in
  let lk = Xor_lock.lock ~seed:56 comb ~n_keys:4 in
  let oracle = Sat_attack.oracle_of_netlist comb in
  let o =
    Tcf.two_frame_attack ~locked:lk.Locked.net
      ~key_inputs:lk.Locked.key_inputs ~oracle ()
  in
  match o.Tcf.sat.Sat_attack.status with
  | Sat_attack.Key_recovered k ->
    Alcotest.(check bool) "functionally correct" true
      (Equiv.check ~fixed_b:k comb lk.Locked.net = Equiv.Equivalent)
  | Sat_attack.Unsat_at_first_iteration _ | Sat_attack.Budget_exhausted ->
    Alcotest.fail "two-frame attack should crack XOR locking"

let test_tcf_fails_on_gk () =
  let net = Benchmarks.tiny () in
  let clock = Sta.clock_for net ~margin:4.5 in
  let d = Insertion.lock ~seed:3 net ~clock_ps:clock ~n_gks:2 in
  let stripped, keys = Insertion.strip_keygens d in
  let locked_comb, _ = Combinationalize.run stripped in
  let oracle_comb, _ = Combinationalize.run net in
  let oracle = Sat_attack.oracle_of_netlist oracle_comb in
  let o = Tcf.two_frame_attack ~locked:locked_comb ~key_inputs:keys ~oracle () in
  Alcotest.(check bool) "still no DIP" true
    (match o.Tcf.sat.Sat_attack.status with
    | Sat_attack.Unsat_at_first_iteration _ -> true
    | Sat_attack.Key_recovered _ | Sat_attack.Budget_exhausted -> false)

(* ----- Enhanced removal ----- *)

let test_enhanced_locate_and_attack () =
  let net = Benchmarks.tiny () in
  let clock = Sta.clock_for net ~margin:4.5 in
  let d = Insertion.lock ~seed:3 net ~clock_ps:clock ~n_gks:2 in
  let stripped, _ = Insertion.strip_keygens d in
  let locked_comb, _ = Combinationalize.run stripped in
  let located = Enhanced_removal.locate locked_comb in
  Alcotest.(check int) "locates both GKs" 2 (List.length located);
  let oracle_comb, _ = Combinationalize.run net in
  let oracle = Sat_attack.oracle_of_netlist ~partial:true oracle_comb in
  let rm, o = Enhanced_removal.attack locked_comb ~oracle in
  (match o.Sat_attack.status with
  | Sat_attack.Key_recovered k ->
    Alcotest.(check int) "decrypts (paper V-D)" 0
      (Sat_attack.verify_key ~locked:rm.Enhanced_removal.net
         ~key_inputs:rm.Enhanced_removal.new_key_inputs ~oracle k)
  | Sat_attack.Unsat_at_first_iteration k ->
    (* zero-corruption case: any key works on the remodelled netlist *)
    Alcotest.(check int) "decrypts trivially" 0
      (Sat_attack.verify_key ~locked:rm.Enhanced_removal.net
         ~key_inputs:rm.Enhanced_removal.new_key_inputs ~oracle k)
  | Sat_attack.Budget_exhausted -> Alcotest.fail "attack exhausted")

let test_enhanced_blinded_by_withholding () =
  let net = Benchmarks.tiny () in
  let clock = Sta.clock_for net ~margin:4.5 in
  let d = Insertion.lock ~seed:3 net ~clock_ps:clock ~n_gks:2 in
  let stripped, _ = Insertion.strip_keygens d in
  let locked_comb, _ = Combinationalize.run stripped in
  let hidden = Netlist.copy locked_comb in
  List.iter
    (fun gk ->
      let interior =
        List.filter (fun id -> id <> gk.Enhanced_removal.mux)
          gk.Enhanced_removal.branch_nodes
      in
      ignore (Withhold.absorb hidden ~root:gk.Enhanced_removal.mux ~interior))
    (Enhanced_removal.locate hidden);
  Alcotest.(check int) "locator blinded" 0
    (List.length (Enhanced_removal.locate hidden));
  Alcotest.(check bool) "search space" true
    (Enhanced_removal.withheld_search_space_log2 ~n_gks:8 ~lut_inputs:4 = 128.0)

(* ----- opt front-end verdict parity across the whole registry -----

   [Attack.run ~optimize] and [Oracle.of_netlist ~optimize] must never
   change an attack's verdict: the strash/rewrite front-end preserves
   the pin interface and the function, so only the run's cost may
   differ.  Incidental payloads that depend on the exact CNF (the
   arbitrary model attached to [No_dip], mismatch sample counts) are
   allowed to differ; a verified key is not. *)

let opt_verdict_repr (o : Attack.outcome) =
  match o.Attack.verdict with
  | Attack.Key_recovered k -> "key_recovered: " ^ Key.to_string k
  | Attack.Gave_up r -> "gave_up: " ^ Attack.gave_up_reason_name r
  | v -> Attack.verdict_name v

let test_opt_verdict_parity () =
  let xor_ctx seed =
    let comb = comb_circuit seed in
    let lk = Xor_lock.lock ~seed comb ~n_keys:5 in
    ( "xor" ^ string_of_int seed,
      lk.Locked.net,
      lk.Locked.key_inputs,
      comb,
      false )
  in
  let gk_ctx =
    let net = Benchmarks.tiny () in
    let clock = Sta.clock_for net ~margin:4.5 in
    let d = Insertion.lock ~seed:3 net ~clock_ps:clock ~n_gks:2 in
    let stripped, keys = Insertion.strip_keygens d in
    let locked_comb, _ = Combinationalize.run stripped in
    let oracle_comb, _ = Combinationalize.run net in
    (* permissive: enhanced-removal re-keys with fresh gkkey* names *)
    ("gk-tiny", locked_comb, keys, oracle_comb, true)
  in
  List.iter
    (fun (cname, locked, key_inputs, chip, partial) ->
      List.iter
        (fun (e : Attack.entry) ->
          let go optimize =
            Attack.run ~seed:3 ~optimize ~name:e.Attack.name ~locked
              ~key_inputs
              ~oracle:(Oracle.of_netlist ~partial ~optimize chip)
              ()
          in
          let plain = go false in
          let opted = go true in
          Alcotest.(check string)
            (Printf.sprintf "%s on %s" e.Attack.name cname)
            (opt_verdict_repr plain) (opt_verdict_repr opted))
        Attack.registry)
    [ xor_ctx 50; gk_ctx ]

let suites =
  [
    ("attacks.oracle", [ tc "basics" `Quick test_oracle ]);
    ( "attacks.sat",
      [
        tc "budget" `Quick test_sat_attack_budget;
        tc "guards" `Quick test_sat_attack_guards;
        tc "sarlock ~2^n DIPs" `Slow test_sarlock_iteration_count;
        qcheck ~count:10 "recovers XOR keys" seed_arb sat_recovers_xor_law;
        qcheck ~count:10 "recovers MUX keys" seed_arb sat_recovers_mux_law;
        qcheck ~count:10 "GK: UNSAT at first DIP, key wrong on chip" seed_arb
          gk_unsat_at_first_law;
      ] );
    ( "attacks.signal_prob",
      [
        tc "basics" `Quick test_signal_prob_basics;
        tc "skew finds SARLock" `Quick test_signal_prob_skew_finds_sarlock;
      ] );
    ( "attacks.removal",
      [
        tc "kills Anti-SAT" `Quick test_removal_kills_antisat;
        tc "no handle on XOR" `Quick test_removal_fails_on_xor;
        tc "TDK strip + SAT" `Quick test_tdk_strip_then_sat;
        tc "GK guessing is exhaustive" `Quick test_guess_gk;
        qcheck ~count:8 "kills SARLock" seed_arb removal_kills_sarlock_law;
      ] );
    ("attacks.brute_force", [ tc "finds key" `Quick test_brute_force ]);
    ( "attacks.tcf",
      [
        tc "unroll structure" `Quick test_tcf_unroll;
        tc "cracks XOR" `Quick test_tcf_recovers_xor;
        tc "fails on GK" `Quick test_tcf_fails_on_gk;
      ] );
    ( "attacks.enhanced_removal",
      [
        tc "locate + remodel + SAT" `Quick test_enhanced_locate_and_attack;
        tc "blinded by withholding" `Quick test_enhanced_blinded_by_withholding;
      ] );
    ( "attacks.opt_parity",
      [ tc "registry verdict parity under opt" `Slow test_opt_verdict_parity ]
    );
  ]
