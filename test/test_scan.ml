(* Tests for scan-chain insertion and the scan-based attack of the
   paper's BIST discussion (Sec. VI). *)

let tc = Alcotest.test_case

let test_scan_structure () =
  let net = Benchmarks.tiny () in
  let scanned, chain = Scan.insert net in
  Alcotest.(check int) "chain covers all FFs"
    (List.length (Netlist.ffs net))
    (List.length chain.Scan.order);
  Alcotest.(check int) "one mux per FF"
    (List.length chain.Scan.order)
    (List.length chain.Scan.scan_muxes);
  Alcotest.(check bool) "scan_out exists" true
    (List.mem_assoc chain.Scan.scan_out (Netlist.outputs scanned));
  Alcotest.(check bool) "scan pins exist" true
    (Netlist.find scanned chain.Scan.scan_in <> None
    && Netlist.find scanned chain.Scan.scan_enable <> None)

let test_scan_functional_transparency () =
  let net = Benchmarks.tiny () in
  let scanned, chain = Scan.insert net in
  let view = Scan.functional_view scanned chain in
  (* with scan_enable = 0 the design is the original *)
  let c1, _ = Combinationalize.run net in
  let c2, _ = Combinationalize.run view in
  match Equiv.check c1 c2 with
  | Equiv.Equivalent -> ()
  | Equiv.Different _ -> Alcotest.fail "scan broke the function"

let test_scan_shift () =
  (* shift mode: with scan_enable = 1, cycle-sim shifts a pattern through *)
  let net = Benchmarks.s27 () in
  let scanned, chain = Scan.insert net in
  let n = List.length chain.Scan.order in
  let pattern = [ true; false; true ] in
  let sim = Cycle_sim.create scanned in
  let se = Option.get (Netlist.find scanned chain.Scan.scan_enable) in
  let si = Option.get (Netlist.find scanned chain.Scan.scan_in) in
  List.iter
    (fun bit ->
      ignore
        (Cycle_sim.step sim ~inputs:(fun id ->
             if id = se then true else if id = si then bit else false)))
    pattern;
  (* after n shifts the first bit reached the chain tail *)
  Alcotest.(check int) "pattern length = chain" n (List.length pattern);
  let state = Cycle_sim.state sim in
  let loaded = List.map (fun ff -> List.assoc ff state) chain.Scan.order in
  Alcotest.(check (list bool)) "state = shifted pattern"
    (List.rev pattern) loaded

let test_scan_attack_cracks_gk_only () =
  let net = Benchmarks.tiny () in
  let clock = Sta.clock_for net ~margin:4.5 in
  let d = Insertion.lock ~seed:3 net ~clock_ps:clock ~n_gks:2 in
  let stripped, _ = Insertion.strip_keygens d in
  let stripped_comb, _ = Combinationalize.run stripped in
  let oracle_comb, _ = Combinationalize.run net in
  let oracle = Sat_attack.oracle_of_netlist ~partial:true oracle_comb in
  let verdicts = Scan_attack.run ~stripped_comb ~oracle () in
  Alcotest.(check int) "both GKs tested" 2 (List.length verdicts);
  List.iter
    (fun v ->
      (* the chip runs the correct transitional key: every GK behaves as a
         buffer at capture time, and scan observation reveals exactly that *)
      Alcotest.(check bool) (v.Scan_attack.v_ppo ^ " = buffer") true
        (v.Scan_attack.v_behaviour = `Buffer))
    verdicts;
  match Scan_attack.decrypt ~stripped_comb verdicts with
  | Some recovered ->
    (* the recovered netlist matches the chip *)
    Alcotest.(check int) "decrypted" 0
      (Sat_attack.verify_key ~locked:recovered ~key_inputs:[] ~oracle [])
  | None -> Alcotest.fail "GK-only design must fall to scan"

let test_scan_attack_vs_hybrid () =
  let spec = Option.get (Benchmarks.find_spec "s5378") in
  let net = Benchmarks.load spec in
  let clock = Sta.clock_for net ~margin:spec.Benchmarks.clk_margin in
  let h = Hybrid.lock ~seed:4 net ~clock_ps:clock ~n_gks:4 ~n_xors:8 in
  let stripped, _ = Insertion.strip_keygens h.Hybrid.design in
  let stripped_comb, _ = Combinationalize.run stripped in
  let oracle_comb, _ = Combinationalize.run net in
  let oracle = Sat_attack.oracle_of_netlist ~partial:true oracle_comb in
  let verdicts =
    Scan_attack.run ~unknown:h.Hybrid.xor_key_inputs ~stripped_comb ~oracle ()
  in
  Alcotest.(check int) "GKs located" 4 (List.length verdicts);
  (* With unknown XOR key bits inside the encrypted cones, the guessed
     reference value of x is wrong on an input-dependent subset of the
     samples, so the hypothesis test loses its decisive split: at least
     one verdict must degrade to `Unknown (this seed gives two). *)
  Alcotest.(check bool) "some verdicts blinded" true
    (List.exists (fun v -> v.Scan_attack.v_behaviour = `Unknown) verdicts);
  Alcotest.(check bool) "no trusted decryption" true
    (Scan_attack.decrypt ~stripped_comb verdicts = None)

let suites =
  [
    ( "flow.scan",
      [
        tc "structure" `Quick test_scan_structure;
        tc "functional transparency" `Quick test_scan_functional_transparency;
        tc "shift mode" `Quick test_scan_shift;
      ] );
    ( "attacks.scan",
      [
        tc "cracks GK-only designs" `Quick test_scan_attack_cracks_gk_only;
        tc "hybrid resists naive scan decrypt" `Slow test_scan_attack_vs_hybrid;
      ] );
  ]
